"""Structure-of-arrays swarm backend: whole-swarm rounds at array speed.

The object backend (:class:`~repro.sim.swarm.Swarm`) walks Python
``Peer`` objects — clear, instrumentable, and the fingerprint reference,
but bounded at a few hundred peers per wall-second.  This module holds
the same protocol round as flat numpy arrays:

* **bitfields** live in a packed ``(capacity, ceil(B/64))`` uint64
  matrix; interest between two peers is one XOR/AND over their rows and
  replication counts come from ``np.bitwise_count``;
* **interest edges** are computed once per round for the whole swarm
  (leecher neighbor rows gathered into an edge list, per-edge novelty
  flags from the packed matrix) and reused by connection maintenance,
  potential-set sizes, and slot-filling proposals;
* **noisy-rarest selection** is a row-wise inverse-transform draw: a
  weight matrix over unpacked candidates, a row cumsum, one pooled
  uniform per transfer;
* **matching and capacity limits** (slot filling, seed upload slots,
  bandwidth caps) use a rank filter — random priorities, per-endpoint
  group ranks, accept while rank < open capacity;
* **arrivals, departures and churn** recycle slots through a LIFO free
  list; neighbor adjacency is a fixed-width int matrix for leechers and
  a bare degree counter for seeds (seeds never initiate trades, so
  their rows are never enumerated — which keeps the matrix width at the
  leecher accept cap even when a seed is neighbor to the whole swarm).

The backend is selected with ``Swarm(config, backend="soa")`` (see
:meth:`~repro.sim.swarm.Swarm.__new__`) and is *statistically*
equivalent to the object engine — same protocol decisions with the same
probabilities, different RNG stream consumption — verified by
``tests/sim/test_soa_equivalence.py``.  Within the soa backend itself,
runs are deterministic and checkpoint/resume is fingerprint-identical
(``tests/checkpoint/test_soa_checkpoint.py``).

The soa backend intentionally supports the paper-scale configuration
subset: global rarity view, blind matching, whole-piece transfers and
no per-peer instrumentation.  Unsupported options raise
:class:`~repro.errors.ParameterError` at construction with a pointer
back to ``backend="object"``.
"""

from __future__ import annotations

import math
import time as _time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ParameterError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.runtime.profiler import RoundProfiler, SOA_STAGES
from repro.sim.choking import ConnectionStats
from repro.sim.config import SimConfig
from repro.sim.engine import DiscreteEventEngine, Event
from repro.sim.metrics import CompletedDownload, MetricsCollector
from repro.sim.peer import PeerStats
from repro.sim.piece_selection import RARITY_EXPONENT

__all__ = [
    "PeerStore",
    "ScratchArena",
    "SoaSwarm",
    "pack_rows",
    "unpack_rows",
    "popcount_rows",
    "pack_mask",
    "words_for",
    "interest_flags",
    "group_ranks",
    "weighted_pick_rows",
]

_ONE = np.uint64(1)

#: Unpack/selection work is chunked to roughly this many matrix cells so
#: a 100k-transfer round never materialises a multi-GB boolean matrix.
_CHUNK_CELLS = 1 << 22


# ----------------------------------------------------------------------
# Packed-bitfield kernels (unit-tested against the scalar Bitfield)
# ----------------------------------------------------------------------
def words_for(num_pieces: int) -> int:
    """uint64 words needed to hold ``num_pieces`` bits."""
    return (num_pieces + 63) // 64


def pack_mask(num_pieces: int, mask: int) -> np.ndarray:
    """Pack a Python-int piece mask into a ``(W,)`` uint64 row."""
    words = np.zeros(words_for(num_pieces), dtype=np.uint64)
    for w in range(words.size):
        words[w] = np.uint64((mask >> (64 * w)) & 0xFFFFFFFFFFFFFFFF)
    return words

def mask_from_words(words: np.ndarray) -> int:
    """Inverse of :func:`pack_mask` (for tests and checkpoints)."""
    mask = 0
    for w in range(words.size):
        mask |= int(words[w]) << (64 * w)
    return mask


def pack_rows(held: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(n, B)`` matrix into ``(n, W)`` uint64 rows."""
    n, num_pieces = held.shape
    padded = num_pieces + (-num_pieces) % 64
    buf = np.zeros((n, padded), dtype=bool)
    buf[:, :num_pieces] = held
    packed = np.packbits(buf, axis=1, bitorder="little")
    return packed.view(np.uint64).reshape(n, padded // 64)


def unpack_rows(words: np.ndarray, num_pieces: int) -> np.ndarray:
    """Unpack ``(n, W)`` uint64 rows into a boolean ``(n, B)`` matrix."""
    n = words.shape[0]
    as_bytes = words.view(np.uint8).reshape(n, -1)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little",
                         count=num_pieces)
    return bits.astype(bool)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Held-piece count per packed row."""
    return np.bitwise_count(words).sum(axis=1).astype(np.int64)


def interest_flags(
    bits: np.ndarray, src: np.ndarray, dst: np.ndarray,
    chunk: int = 1 << 18,
    counts: Optional[np.ndarray] = None,
    num_pieces: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-edge novelty flags from the packed bitfield matrix.

    Returns ``(give_sd, give_ds)``: whether ``src`` holds a piece
    ``dst`` lacks (src can give, i.e. dst is interested in src) and the
    reverse.  Mutual interest is the AND of both.  Chunked so the edge
    list can be swarm-sized without a matching blow-up in temporaries.

    When ``counts`` (per-slot held-piece counts) and ``num_pieces`` are
    supplied, edges with an empty or complete endpoint are decided from
    the counts alone — an empty peer wants everything and offers
    nothing; a complete peer offers everything and wants nothing — and
    the packed-word XOR only runs on the residual edges where both
    endpoints hold a strict subset.  During a flash-crowd bootstrap
    (almost everyone empty) this skips nearly all the gather work.
    """
    n = src.size
    if counts is None:
        give_sd = np.empty(n, dtype=bool)
        give_ds = np.empty(n, dtype=bool)
        for lo in range(0, n, chunk):
            hi = min(n, lo + chunk)
            bs = bits[src[lo:hi]]
            bd = bits[dst[lo:hi]]
            diff = bs ^ bd
            give_sd[lo:hi] = (diff & bs).any(axis=1)
            give_ds[lo:hi] = (diff & bd).any(axis=1)
        return give_sd, give_ds
    if num_pieces is None:
        raise ValueError("num_pieces is required when counts is given")
    cs = counts[src]
    cd = counts[dst]
    # Count-only rules (exact for empty/complete endpoints):
    #   src empty     -> give_sd False;  src complete -> give_sd = dst
    #   incomplete; dst empty -> give_sd = src non-empty; symmetric for
    #   give_ds.  Both strict subsets -> actual bitfield comparison.
    give_sd = (cs > 0) & (cd < num_pieces)
    give_ds = (cd > 0) & (cs < num_pieces)
    hard = (
        (cs > 0) & (cs < num_pieces) & (cd > 0) & (cd < num_pieces)
    )
    idx = np.flatnonzero(hard)
    for lo in range(0, idx.size, chunk):
        sel = idx[lo: lo + chunk]
        bs = bits[src[sel]]
        bd = bits[dst[sel]]
        diff = bs ^ bd
        give_sd[sel] = (diff & bs).any(axis=1)
        give_ds[sel] = (diff & bd).any(axis=1)
    return give_sd, give_ds


def group_ranks(keys: np.ndarray, priority: np.ndarray) -> np.ndarray:
    """Rank of each element within its key group, ordered by priority.

    The vectorized backbone of every capacity limit here: give each
    proposal a random priority, rank it among the proposals incident to
    each endpoint, and accept while the rank is below the endpoint's
    open capacity — the array form of "shuffle, then take the first
    ``cap`` per group".
    """
    n = keys.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1 or bool((priority[1:] > priority[:-1]).all()):
        # Ascending priority: a stable sort on keys alone keeps the
        # within-group priority order.
        order = np.argsort(keys, kind="stable")
    else:
        kmax = int(keys.max())
        pmax = int(priority.max())
        if int(priority.min()) >= 0 and kmax < (1 << 62) // (pmax + 1):
            # Fuse (key, priority) into one int64 so a single argsort
            # replaces the two-key lexsort.
            order = np.argsort(
                keys * np.int64(pmax + 1) + priority, kind="stable"
            )
        else:
            order = np.lexsort((priority, keys))
    sorted_keys = keys[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_keys[1:] != sorted_keys[:-1]
    positions = np.arange(n, dtype=np.int64)
    group_start = np.maximum.accumulate(np.where(boundary, positions, 0))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = positions - group_start
    return ranks


def _contiguous_ranks(keys: np.ndarray) -> np.ndarray:
    """Within-group rank for an array whose equal keys are contiguous.

    A sort-free :func:`group_ranks` for the common case where proposals
    are *generated* grouped (e.g. ``np.repeat(announcers, need)``) and
    every subsequent mask-compaction preserves that grouping; priority
    is array position.
    """
    n = keys.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = keys[1:] != keys[:-1]
    positions = np.arange(n, dtype=np.int64)
    return positions - np.maximum.accumulate(
        np.where(boundary, positions, 0)
    )


def weighted_pick_rows(
    weights: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """One weighted draw per row; -1 for all-zero rows.

    The row-wise inverse transform mirrors the scalar
    :func:`~repro.sim.piece_selection.select_piece` draw: cumsum the
    weights, scale one uniform per row by the row total, count the
    entries at or below it.
    """
    if weights.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    cdf = np.cumsum(weights, axis=1)
    total = cdf[:, -1]
    u = rng.random(weights.shape[0]) * total
    idx = (cdf <= u[:, None]).sum(axis=1).astype(np.int64)
    np.minimum(idx, weights.shape[1] - 1, out=idx)
    idx[total <= 0.0] = -1
    return idx


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class PeerStore:
    """Structure-of-arrays peer state with free-list slot recycling.

    Every per-peer scalar of the object backend's ``Peer`` lives here as
    one array indexed by *slot*.  Slots are recycled LIFO so array reads
    stay dense; ``alive`` masks out the free ones.  Neighbor adjacency:

    * leechers keep a fixed-width row in ``nbr`` (width = the tracker
      accept cap) plus its fill ``nbr_deg``;
    * seeds keep only ``nbr_deg`` as a relation counter — their side of
      each symmetric relation is recovered by scanning leecher rows,
      which the round does anyway to build the interest edge list.

    Trading connections are *not* stored here: the swarm keeps them as
    an ``(M, 2)`` pair array (see :class:`SoaSwarm`), which makes
    drop/filter/append operations single array ops.
    """

    def __init__(self, capacity: int, num_pieces: int, nbr_width: int):
        self.num_pieces = num_pieces
        self.words = words_for(num_pieces)
        self.nbr_width = nbr_width
        self.capacity = 0
        self.free: List[int] = []
        self._allocate_arrays(max(capacity, 8))

    def _allocate_arrays(self, capacity: int) -> None:
        self.alive = np.zeros(capacity, dtype=bool)
        self.is_seed = np.zeros(capacity, dtype=bool)
        self.shaken = np.zeros(capacity, dtype=bool)
        self.peer_id = np.full(capacity, -1, dtype=np.int64)
        self.counts = np.zeros(capacity, dtype=np.int64)
        self.bits = np.zeros((capacity, self.words), dtype=np.uint64)
        self.joined_at = np.zeros(capacity, dtype=np.float64)
        self.seed_until = np.full(capacity, np.nan)
        self.first_piece_at = np.full(capacity, np.nan)
        self.prelast_at = np.full(capacity, np.nan)
        self.shaken_at = np.full(capacity, np.nan)
        #: Uploads per round under heterogeneous bandwidth; -1 means
        #: unconstrained (the paper's homogeneous setting).
        self.upload_capacity = np.full(capacity, -1, dtype=np.int64)
        self.nbr = np.full((capacity, self.nbr_width), -1, dtype=np.int64)
        self.nbr_deg = np.zeros(capacity, dtype=np.int64)
        #: Pieces a seed has already injected (super-seeding mode).
        self.seeded = np.zeros((capacity, self.words), dtype=np.uint64)
        self.free = list(range(capacity - 1, -1, -1))
        self.capacity = capacity

    def grow(self, min_capacity: int) -> None:
        """Double capacity (at least to ``min_capacity``), keep contents."""
        new_cap = max(self.capacity * 2, min_capacity)
        old_cap = self.capacity
        old = self.__dict__.copy()
        self._allocate_arrays(new_cap)
        for name in (
            "alive", "is_seed", "shaken", "peer_id", "counts", "bits",
            "joined_at", "seed_until", "first_piece_at", "prelast_at",
            "shaken_at", "upload_capacity", "nbr", "nbr_deg", "seeded",
        ):
            getattr(self, name)[:old_cap] = old[name]
        # _allocate_arrays reset the free list to cover everything; keep
        # the old list (LIFO order preserved) plus the new slots on top.
        self.free = list(range(new_cap - 1, old_cap - 1, -1)) + old["free"]

    def allocate(self, count: int) -> np.ndarray:
        """Take ``count`` slots off the free list, fully reset."""
        if count > len(self.free):
            self.grow(self.capacity + count)
        # The last `count` entries reversed == `count` repeated pops.
        take = self.free[len(self.free) - count:]
        del self.free[len(self.free) - count:]
        slots = np.array(take[::-1], dtype=np.int64)
        self.alive[slots] = True
        self.is_seed[slots] = False
        self.shaken[slots] = False
        self.counts[slots] = 0
        self.bits[slots] = 0
        self.seed_until[slots] = np.nan
        self.first_piece_at[slots] = np.nan
        self.prelast_at[slots] = np.nan
        self.shaken_at[slots] = np.nan
        self.upload_capacity[slots] = -1
        self.nbr[slots] = -1
        self.nbr_deg[slots] = 0
        self.seeded[slots] = 0
        return slots

    def release(self, slots: np.ndarray) -> None:
        """Return slots to the free list (ascending push order)."""
        self.alive[slots] = False
        self.peer_id[slots] = -1
        self.nbr[slots] = -1
        self.nbr_deg[slots] = 0
        self.free.extend(np.sort(slots).tolist())

    def append_neighbor(self, row: int, value: int) -> None:
        """Append ``value`` to a leecher's neighbor row."""
        deg = int(self.nbr_deg[row])
        if deg >= self.nbr_width:
            raise SimulationError(
                f"neighbor row overflow at slot {row} "
                f"(width {self.nbr_width})"
            )
        self.nbr[row, deg] = value
        self.nbr_deg[row] = deg + 1

    def remove_row_entries(
        self, holders: np.ndarray, values: np.ndarray
    ) -> None:
        """Delete ``values[i]`` from ``holders[i]``'s neighbor row.

        Vectorized multi-removal: mark the doomed cells, stable-partition
        every affected row so kept entries slide left in order, then
        blank the tail.  Each (holder, value) must exist exactly once.
        """
        if holders.size == 0:
            return
        rows = np.unique(holders)
        sub = self.nbr[rows]
        drop = np.zeros(sub.shape, dtype=bool)
        row_pos = np.searchsorted(rows, holders)
        np.logical_or.at(drop, row_pos, sub[row_pos] == values[:, None])
        order = np.argsort(drop, axis=1, kind="stable")
        packed = np.take_along_axis(sub, order, axis=1)
        new_deg = self.nbr_deg[rows] - drop.sum(axis=1)
        tail = np.arange(self.nbr_width)[None, :] >= new_deg[:, None]
        packed[tail] = -1
        self.nbr[rows] = packed
        self.nbr_deg[rows] = new_deg


# ----------------------------------------------------------------------
# The scratch arena
# ----------------------------------------------------------------------
class ScratchArena:
    """Reusable per-round work buffers, keyed by name.

    Steady-state rounds of the SoA engine need a handful of
    capacity-sized temporaries (masks, quotas, sweep buffers).  The
    arena keeps one persistent buffer per name and hands out zeroed or
    filled *views* of the requested size, so a settled swarm allocates
    ~zero fresh arrays per round; buffers grow geometrically with the
    slab.  ``created`` counts (re)allocations — the reuse test pins it
    flat across steady-state rounds.

    Values are always explicitly reset on take, so arena reuse is
    bit-invisible to the simulation.
    """

    __slots__ = ("_buffers", "created")

    def __init__(self):
        self._buffers: Dict[str, np.ndarray] = {}
        self.created = 0

    def take(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """An *uninitialized* length-``size`` view of buffer ``name``."""
        buf = self._buffers.get(name)
        if buf is None or buf.size < size or buf.dtype != dtype:
            grown = size if buf is None else max(size, 2 * buf.size)
            buf = np.empty(grown, dtype=dtype)
            self._buffers[name] = buf
            self.created += 1
        return buf[:size]

    def zeros(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        view = self.take(name, size, dtype)
        view.fill(0)
        return view

    def full(self, name: str, size: int, fill, dtype=np.int64) -> np.ndarray:
        view = self.take(name, size, dtype)
        view.fill(fill)
        return view


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
from repro.sim.swarm import Swarm, SwarmResult  # noqa: E402  (cycle-safe: swarm imports soa lazily)


class SoaSwarm(Swarm):
    """Array-native swarm: same protocol, same config, ~2 orders faster.

    Construction mirrors :class:`~repro.sim.swarm.Swarm`; options that
    require per-peer objects (instrumentation, neighborhood rarity,
    greedy matching, sub-piece blocks, tracker bootstrap bias, and the
    sequential/windowed streaming policies) raise
    :class:`~repro.errors.ParameterError` pointing at the object
    backend.
    """

    def __init__(
        self,
        config: SimConfig,
        *,
        backend: str = "soa",
        instrument_first: int = 0,
        instrumented_avoid_seeds: bool = False,
        instrumented_start_empty: bool = True,
        rarity_view: str = "global",
        metrics: Optional[MetricsCollector] = None,
        faults: Optional[FaultPlan] = None,
        profile: bool = False,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
    ):
        if backend != "soa":
            raise ParameterError(
                f"SoaSwarm is the 'soa' backend, got backend={backend!r}"
            )
        self._check_supported(
            config, instrument_first, instrumented_avoid_seeds, rarity_view
        )
        self.backend = "soa"
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.engine = DiscreteEventEngine()
        self.metrics = metrics or MetricsCollector(config.max_conns)
        self.instrument_first = 0
        self.instrumented_avoid_seeds = instrumented_avoid_seeds
        self.instrumented_start_empty = instrumented_start_empty
        self.rarity_view = rarity_view
        self.instrumented_peers: list = []
        self.piece_counts = np.zeros(config.num_pieces, dtype=np.int64)
        self.connection_stats = ConnectionStats()
        self.profiler: Optional[RoundProfiler] = (
            RoundProfiler(stages=SOA_STAGES) if profile else None
        )
        self.seed_upload_count = 0
        self._rounds = 0
        self._setup_done = False
        if checkpoint_every < 0:
            raise ParameterError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ParameterError(
                "checkpoint_every > 0 requires a checkpoint_path"
            )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.checkpoints_written = 0
        self.resumed_from_round: Optional[int] = None
        self.fault_injector: Optional[FaultInjector] = None
        if faults is not None:
            self.fault_injector = FaultInjector(faults, config.seed)
            self.engine.add_pre_dispatch_hook(self.fault_injector.observe)
        self.engine.register("round", self._on_round)
        self.engine.register("arrival", self._on_arrival)

        self._accept_cap = max(
            int(config.ns_size * config.ns_accept_factor), config.ns_size
        )
        expected = (
            config.num_seeds
            + config.initial_leechers
            + config.flash_size
            + int(config.arrival_rate * config.max_time * 1.25)
            + 64
        )
        self.store = PeerStore(
            expected, config.num_pieces, self._accept_cap
        )
        #: Reusable per-round temporaries (masks, quotas, sweeps): a
        #: settled swarm's rounds run allocation-free out of this arena.
        self.scratch = ScratchArena()
        #: Active trading connections as (slot_a, slot_b) rows, a < b.
        #: Row order is part of the deterministic state (checkpointed).
        self._pairs = np.zeros((0, 2), dtype=np.int64)
        self._id_to_slot: Dict[int, int] = {}
        self._next_id = 0
        self._n_leech = 0
        self._n_seeds = 0
        self._population_log: List[Tuple[float, int, int]] = []
        self._full_words = pack_mask(
            config.num_pieces, (1 << config.num_pieces) - 1
        )
        self._counts_snapshot: Optional[np.ndarray] = None
        self._snapshot_round = -1
        self._alive_cache = np.zeros(0, dtype=np.int64)
        self._alive_dirty = True
        #: Arrival slots whose tracker announce is deferred to the next
        #: round boundary (neighbor rows are only read during rounds,
        #: so coalescing the announces there is observation-equivalent
        #: and turns per-arrival work into one batch per round).
        self._pending_announce: List[int] = []

    @staticmethod
    def _check_supported(
        config: SimConfig,
        instrument_first: int,
        instrumented_avoid_seeds: bool,
        rarity_view: str,
    ) -> None:
        hint = "; use Swarm(config, backend='object') for this option"
        if instrument_first > 0 or instrumented_avoid_seeds:
            raise ParameterError(
                "the soa backend does not support per-peer "
                "instrumentation" + hint
            )
        if rarity_view != "global":
            raise ParameterError(
                f"the soa backend supports rarity_view='global' only, "
                f"got {rarity_view!r}" + hint
            )
        if config.piece_selection not in ("rarest", "strict-rarest", "random"):
            raise ParameterError(
                f"the soa backend supports piece_selection in "
                f"('rarest', 'strict-rarest', 'random'), "
                f"got {config.piece_selection!r}" + hint
            )
        if config.matching != "blind":
            raise ParameterError(
                f"the soa backend supports matching='blind' only, "
                f"got {config.matching!r}" + hint
            )
        if config.blocks_per_piece != 1:
            raise ParameterError(
                f"the soa backend transfers whole pieces "
                f"(blocks_per_piece=1), got {config.blocks_per_piece}"
                + hint
            )
        if config.tracker_bias_bootstrap:
            raise ParameterError(
                "the soa backend does not support "
                "tracker_bias_bootstrap" + hint
            )

    # ------------------------------------------------------------------
    # Setup / spawning
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Create the initial population and schedule the event skeleton."""
        if self._setup_done:
            raise SimulationError("setup() called twice")
        self._setup_done = True
        config = self.config

        if config.num_seeds:
            self._spawn_batch(0.0, config.num_seeds, is_seed=True)
        if config.initial_leechers:
            self._spawn_batch(
                0.0,
                config.initial_leechers,
                init_words=self._initial_words(config.initial_leechers),
            )
        if config.arrival_process == "flash" and config.flash_size:
            self._spawn_batch(0.0, config.flash_size)
        elif config.arrival_process == "poisson" and config.arrival_rate > 0:
            self._schedule_next_arrival()

        expected_rounds = int(config.max_time / config.piece_time)
        self.metrics.set_expected_rounds(expected_rounds)
        self.engine.schedule_at(config.piece_time, Event("round"))

    def _initial_words(self, count: int) -> Optional[np.ndarray]:
        """Packed initial bitfields for ``count`` initial leechers."""
        config = self.config
        if config.initial_distribution == "empty":
            return None
        prob = np.full(config.num_pieces, config.initial_fill)
        if config.initial_distribution == "skewed":
            prob[: config.skewed_pieces] *= config.skew_factor
        held = self.rng.random((count, config.num_pieces)) < prob[None, :]
        # A complete "initial leecher" would depart instantly; drop one
        # random piece so it participates at least one round.
        full_rows = np.flatnonzero(held.all(axis=1))
        if full_rows.size:
            drops = self.rng.integers(
                0, config.num_pieces, size=full_rows.size
            )
            held[full_rows, drops] = False
        return pack_rows(held)

    def _spawn_batch(
        self,
        time: float,
        count: int,
        *,
        is_seed: bool = False,
        init_words: Optional[np.ndarray] = None,
        announce: bool = True,
    ) -> np.ndarray:
        config = self.config
        store = self.store
        slots = store.allocate(count)
        self._alive_dirty = True
        ids = np.arange(self._next_id, self._next_id + count, dtype=np.int64)
        self._next_id += count
        store.peer_id[slots] = ids
        self._id_to_slot.update(zip(ids.tolist(), slots.tolist()))
        store.joined_at[slots] = time
        if is_seed:
            store.is_seed[slots] = True
            store.bits[slots] = self._full_words[None, :]
            store.counts[slots] = config.num_pieces
            self.piece_counts += count
            self._n_seeds += count
        else:
            self._n_leech += count
            if init_words is not None:
                store.bits[slots] = init_words
                counts = popcount_rows(init_words)
                store.counts[slots] = counts
                self.piece_counts += unpack_rows(
                    init_words, config.num_pieces
                ).sum(axis=0)
                store.first_piece_at[slots[counts > 0]] = time
                store.prelast_at[
                    slots[counts >= config.num_pieces - 1]
                ] = time
            if config.bandwidth_classes is not None:
                fractions = [f for f, _ in config.bandwidth_classes]
                caps = np.array(
                    [int(c) for _, c in config.bandwidth_classes],
                    dtype=np.int64,
                )
                chosen = self.rng.choice(
                    len(fractions), size=count, p=fractions
                )
                store.upload_capacity[slots] = caps[chosen]
        if announce:
            self._announce_batch(slots)
        else:
            self._pending_announce.extend(slots.tolist())
        return slots

    # ------------------------------------------------------------------
    # Tracker announce (slot-native, whole batches at once)
    # ------------------------------------------------------------------
    def _announce_batch(self, slots: np.ndarray) -> None:
        """Fill each announcer's neighbor set toward ``ns_size``.

        The tracker's sequential permutation walk becomes rejection
        sampling over the whole announcer batch: every announcer draws
        an oversampled batch of uniform candidates, invalid draws
        (self, duplicates, existing neighbors, at-cap leechers) are
        masked, and per-endpoint rank filters enforce the announce
        quota and the row-space cap; unfilled announcers redraw for a
        few passes.  A near-saturated swarm can leave an announcer
        slightly under-filled where the sequential walk would have
        scanned every peer — it retries at the next refill interval.
        """
        store = self.store
        config = self.config
        injector = self.fault_injector
        if injector is not None:
            outage = injector.announce_outage()
            if outage is not None:
                if outage.mode == "empty":
                    for _ in range(slots.size):
                        injector.record_empty_announce()
                    return
                for slot in slots:
                    deficit = config.ns_size - int(store.nbr_deg[slot])
                    if deficit > 0:
                        self._announce_stale(int(slot), deficit, outage)
                return
        alive = self._alive_slots()
        if alive.size <= 1:
            return
        need = config.ns_size - store.nbr_deg[slots]
        ann = slots[need > 0]
        for _ in range(3):
            need = config.ns_size - store.nbr_deg[ann]
            ann = ann[need > 0]
            need = need[need > 0]
            if ann.size == 0:
                break
            admitted = self._announce_pass(ann, need, alive)
            if not admitted:
                break

    def _announce_pass(
        self, ann: np.ndarray, need: np.ndarray, alive: np.ndarray
    ) -> int:
        """One oversampled draw-filter-admit pass; returns additions.

        Two structural facts keep this cheap: proposals are generated
        grouped by announcer (``repeat``), so the announce-quota rank
        needs no sort; and the announcer's row always has room for its
        quota (``accept_cap >= ns_size``), so row space only binds on
        the *candidate* role — and only for the handful of candidates
        actually oversubscribed this pass, which are rank-filtered in
        isolation.
        """
        store = self.store
        cap = store.capacity
        oversample = np.maximum((3 * need) // 2, 4)
        prop_ann = np.repeat(ann, oversample)
        n_prop = prop_ann.size
        cand = alive[self.rng.integers(0, alive.size, size=n_prop)]
        ok = cand != prop_ann
        if int(store.nbr_deg.sum()) > 0:
            # Existing-relation check against the announcer's row
            # (chunked: the row slice is n_prop x accept_cap).  The
            # relation is symmetric, so one side suffices — unless the
            # announcer is a seed (counter-only, no row), where the
            # candidate's row is the only record.  A fresh swarm (flash
            # setup) has no relations at all and skips the gather.
            chunk = max(1, _CHUNK_CELLS // max(store.nbr_width, 1))
            seed_ann = store.is_seed[prop_ann]
            for lo in range(0, n_prop, chunk):
                hi = min(n_prop, lo + chunk)
                side = np.where(
                    seed_ann[lo:hi], cand[lo:hi], prop_ann[lo:hi]
                )
                other = np.where(
                    seed_ann[lo:hi], prop_ann[lo:hi], cand[lo:hi]
                )
                known = (store.nbr[side] == other[:, None]).any(axis=1)
                ok[lo:hi] &= ~known
        # Leecher candidates with a full row decline.
        ok &= store.is_seed[cand] | (
            store.nbr_deg[cand] < self._accept_cap
        )
        idx = np.flatnonzero(ok)
        if idx.size == 0:
            return 0
        p_ann = prop_ann[idx]
        p_cand = cand[idx]
        # Announce quota: proposals stay grouped by announcer in draw
        # order, so the within-group rank is position minus group start.
        quota = self.scratch.zeros("announce_quota", cap)
        quota[ann] = need
        admit = _contiguous_ranks(p_ann) < quota[p_ann]
        p_ann = p_ann[admit]
        p_cand = p_cand[admit]
        if p_ann.size == 0:
            return 0
        # Dedupe repeated unordered pairs within the batch (keep the
        # earliest draw, like the tracker's walk visiting each peer
        # once).  A duplicate inside the quota window wastes its slot —
        # the next pass redraws it.
        key = (
            np.minimum(p_ann, p_cand) * cap
            + np.maximum(p_ann, p_cand)
        )
        _, first = np.unique(key, return_index=True)
        first.sort()
        p_ann = p_ann[first]
        p_cand = p_cand[first]
        # Candidate-role row space: capacity left after this pass's own
        # announcer-role additions.  Only oversubscribed candidates
        # (rare outside flash setup) need the rank filter.
        space = self.scratch.take("announce_space", cap)
        np.subtract(self._accept_cap, store.nbr_deg, out=space)
        space[store.is_seed] = np.iinfo(np.int64).max
        space -= np.bincount(p_ann, minlength=cap)
        load = np.bincount(p_cand, minlength=cap)
        over = load > space
        if over.any():
            viol = over[p_cand]
            v_idx = np.flatnonzero(viol)
            ranks = group_ranks(p_cand[v_idx], v_idx)
            keep = np.ones(p_ann.size, dtype=bool)
            keep[v_idx] = ranks < space[p_cand[v_idx]]
            p_ann = p_ann[keep]
            p_cand = p_cand[keep]
        if p_ann.size == 0:
            return 0
        self._append_relations(p_ann, p_cand, grouped=True)
        self._append_relations(p_cand, p_ann)
        return p_ann.size

    def _append_relations(
        self,
        holders: np.ndarray,
        values: np.ndarray,
        *,
        grouped: bool = False,
    ) -> None:
        """Record one direction of new relations (holders may repeat).

        Seed holders are counter-only; leecher holders get the values
        scattered into their rows at their current fill positions.
        ``grouped=True`` asserts equal holders are already contiguous
        (announce proposals are generated that way), skipping the sort.
        """
        store = self.store
        seed_side = store.is_seed[holders]
        if seed_side.any():
            np.add.at(store.nbr_deg, holders[seed_side], 1)
            holders = holders[~seed_side]
            values = values[~seed_side]
        if holders.size == 0:
            return
        if grouped:
            h = holders
            v = values
        else:
            order = np.argsort(holders, kind="stable")
            h = holders[order]
            v = values[order]
        pos = store.nbr_deg[h] + _contiguous_ranks(h)
        store.nbr[h, pos] = v
        np.add.at(store.nbr_deg, holders, 1)

    def _announce_stale(self, slot: int, deficit: int, outage) -> int:
        """Stale-window announce: a fixed handout from the snapshot."""
        store = self.store
        injector = self.fault_injector
        pool_ids = injector.stale_peer_ids(
            outage, sorted(self._id_to_slot)
        )
        deg = int(store.nbr_deg[slot])
        neighbor_slots = {int(v) for v in store.nbr[slot, :deg]}
        my_id = int(store.peer_id[slot])
        candidates = []
        for pid in pool_ids:
            if pid == my_id:
                continue
            cand_slot = self._id_to_slot.get(pid, -1)
            if cand_slot in neighbor_slots:
                continue
            candidates.append(pid)
        if not candidates:
            return 0
        permuted = [
            candidates[j] for j in self.rng.permutation(len(candidates))
        ]
        added = 0
        for pid in permuted[:deficit]:
            cand_slot = self._id_to_slot.get(pid)
            if cand_slot is None:
                continue  # departed during the outage: wasted handout
            if (
                not store.is_seed[cand_slot]
                and store.nbr_deg[cand_slot] >= self._accept_cap
            ):
                continue
            self._add_relation(slot, int(cand_slot))
            added += 1
        return added

    def _add_relation(self, a: int, b: int) -> None:
        """Record the symmetric neighbor relation between two slots."""
        store = self.store
        if store.is_seed[a]:
            store.nbr_deg[a] += 1
        else:
            store.append_neighbor(a, b)
        if store.is_seed[b]:
            store.nbr_deg[b] += 1
        else:
            store.append_neighbor(b, a)

    def _alive_slots(self) -> np.ndarray:
        if self._alive_dirty:
            self._alive_cache = np.flatnonzero(self.store.alive)
            self._alive_dirty = False
        return self._alive_cache

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        delay = float(self.rng.exponential(1.0 / self.config.arrival_rate))
        when = self.engine.now + delay
        if when <= self.config.max_time:
            self.engine.schedule_at(when, Event("arrival"))

    def _on_arrival(self, time: float, event: Event) -> None:
        self._spawn_batch(time, 1, announce=False)
        self._schedule_next_arrival()

    # ------------------------------------------------------------------
    # The protocol round
    # ------------------------------------------------------------------
    def _on_round(self, time: float, event: Event) -> None:
        config = self.config
        store = self.store
        self._rounds += 1
        profiler = self.profiler
        if profiler is not None:
            profiler.begin_round()

        if self._pending_announce:
            self._announce_batch(
                np.array(self._pending_announce, dtype=np.int64)
            )
            self._pending_announce.clear()
        self._depart_lingering_seeds(time)
        self._handle_aborts(time)
        self._inject_churn(time)
        self._maintain_connections()
        if profiler is not None:
            profiler.lap("store")

        leech = np.flatnonzero(store.alive & ~store.is_seed)
        pot_full = self.scratch.zeros("pot_full", store.capacity)
        if leech.size:
            src, dst, row_idx = self._leech_edges(leech)
            if src.size:
                give_sd, give_ds = interest_flags(
                    store.bits, src, dst,
                    counts=store.counts,
                    num_pieces=self.config.num_pieces,
                )
                mutual = give_sd & give_ds
                pot = np.bincount(
                    row_idx[mutual], minlength=leech.size
                )
            else:
                give_sd = give_ds = mutual = np.zeros(0, dtype=bool)
                pot = np.zeros(leech.size, dtype=np.int64)
            pot_full[leech] = pot
            if profiler is not None:
                profiler.lap("interest")

            self._fill_slots(leech, dst, row_idx, mutual, pot)
            if profiler is not None:
                profiler.lap("selection")

            self._exchange(time)
            if profiler is not None:
                profiler.lap("exchange")

            self._seed_uploads(src, dst, time)
            self._donations(leech, time)
            if profiler is not None:
                profiler.lap("seeds")

            self._handle_completions(time)
            self._handle_shakes(time)
            self._refill_neighbor_sets()
        else:
            if profiler is not None:
                profiler.lap("interest")

        self._log_round(time, pot_full)
        if profiler is not None:
            profiler.lap("bookkeeping")

        next_time = time + config.piece_time
        if next_time <= config.max_time and (
            (self._n_leech + self._n_seeds) > 0
            or self.engine.pending_events > 0
        ):
            self.engine.schedule_at(next_time, Event("round"))

        if (
            self.checkpoint_every > 0
            and self._rounds % self.checkpoint_every == 0
        ):
            self.write_checkpoint()

    # -- store maintenance -------------------------------------------------
    def _depart_lingering_seeds(self, time: float) -> None:
        if self.config.completed_become_seeds <= 0:
            return  # origin seeds have no deadline and never leave
        store = self.store
        due = np.flatnonzero(
            store.alive & store.is_seed & (store.seed_until <= time)
        )
        if due.size:
            self._remove_peers(due)

    def _handle_aborts(self, time: float) -> None:
        """Leechers abandon at rate ``abort_rate`` via one batched draw."""
        rate = self.config.abort_rate
        if rate <= 0.0:
            return
        store = self.store
        leech = np.flatnonzero(store.alive & ~store.is_seed)
        if leech.size == 0:
            return
        mask = self.rng.random(leech.size) < rate
        if mask.any():
            gone = leech[mask]
            for slot in gone:
                self.metrics.record_abort(time, int(store.counts[slot]))
            self._remove_peers(gone)

    def _inject_churn(self, time: float) -> None:
        """Fault-plan churn through the injector's batched mask."""
        injector = self.fault_injector
        if injector is None or injector.plan.churn_hazard <= 0.0:
            return
        store = self.store
        leech = np.flatnonzero(store.alive & ~store.is_seed)
        if leech.size == 0:
            return
        mask = injector.churn_mask(leech.size)
        if mask.any():
            gone = leech[mask]
            for slot in gone:
                self.metrics.record_abort(time, int(store.counts[slot]))
            self._remove_peers(gone)

    def _maintain_connections(self) -> None:
        """Drop pairs that lost interest or failed exogenously."""
        pairs = self._pairs
        if pairs.shape[0] == 0:
            return
        config = self.config
        a = pairs[:, 0]
        b = pairs[:, 1]
        give_ab, give_ba = interest_flags(
            self.store.bits, a, b,
            counts=self.store.counts,
            num_pieces=config.num_pieces,
        )
        if config.strict_tft:
            alive = give_ab & give_ba
        else:
            alive = give_ab | give_ba
        if config.connection_failure_prob > 0.0:
            idx = np.flatnonzero(alive)
            if idx.size:
                failed = (
                    self.rng.random(idx.size)
                    < config.connection_failure_prob
                )
                alive[idx[failed]] = False
        injector = self.fault_injector
        if (
            injector is not None
            and injector.plan.connection_break_prob > 0.0
        ):
            idx = np.flatnonzero(alive)
            broken = injector.break_mask(idx.size)
            if broken.any():
                alive[idx[broken]] = False
        survived = int(alive.sum())
        self.connection_stats.survived += survived
        self.connection_stats.dropped += pairs.shape[0] - survived
        if survived < pairs.shape[0]:
            self._pairs = pairs[alive]

    # -- interest edges ----------------------------------------------------
    def _leech_edges(
        self, leech: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edge list (src leecher, dst neighbor) over all leecher rows."""
        store = self.store
        deg = store.nbr_deg[leech]
        total = int(deg.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty
        width = int(deg.max())
        sub = store.nbr[leech][:, :width]
        mask = np.arange(width)[None, :] < deg[:, None]
        dst = sub[mask]
        row_idx = np.repeat(
            np.arange(leech.size, dtype=np.int64), deg
        )
        src = leech[row_idx]
        return src, dst, row_idx

    # -- matching ----------------------------------------------------------
    def _partner_degrees(self) -> np.ndarray:
        if self._pairs.shape[0] == 0:
            return np.zeros(self.store.capacity, dtype=np.int64)
        return np.bincount(
            self._pairs.ravel(), minlength=self.store.capacity
        )

    def _fill_slots(
        self,
        leech: np.ndarray,
        dst: np.ndarray,
        row_idx: np.ndarray,
        mutual: np.ndarray,
        pot: np.ndarray,
    ) -> None:
        """Blind bilateral matching over the mutual-interest edges.

        Each leecher proposes one uniformly drawn potential partner per
        open slot; proposals then pass a handshake/setup gate and a
        two-sided rank filter that admits at most ``open`` new
        connections per endpoint (an endpoint whose earlier-priority
        proposal fails elsewhere simply under-fills, exactly like the
        object backend's busy-candidate waste).
        """
        config = self.config
        cap = self.store.capacity
        degrees = self._partner_degrees()
        open_slots = config.max_conns - degrees[leech]
        # Candidate pool per proposer = potential minus current partners
        # (the object backend's ``candidates`` list).
        m_row = row_idx[mutual]
        m_dst = dst[mutual]
        if self._pairs.shape[0]:
            m_src = leech[m_row]
            edge_key = (
                np.minimum(m_src, m_dst) * cap
                + np.maximum(m_src, m_dst)
            )
            pair_keys = self._pairs[:, 0] * cap + self._pairs[:, 1]
            keep = ~np.isin(edge_key, pair_keys)
            m_row = m_row[keep]
            m_dst = m_dst[keep]
        avail = np.bincount(m_row, minlength=leech.size)
        proposing = (avail > 0) & (open_slots > 0)
        if not proposing.any():
            return
        starts = np.cumsum(avail) - avail
        rows = np.flatnonzero(proposing)
        prop_row = np.repeat(rows, open_slots[rows])
        n_prop = prop_row.size
        self.connection_stats.attempts += n_prop
        u = self.rng.random(n_prop)
        span = avail[prop_row]
        pick = starts[prop_row] + np.minimum(
            (u * span).astype(np.int64), span - 1
        )
        candidate = m_dst[pick]
        proposer = leech[prop_row]
        # Per-peer sweep positions (the object backend's random
        # processing order); a proposal's priority is its owner's turn,
        # slots within the turn in draw order.
        sweep = self.scratch.full("sweep", cap, -1)
        sweep[leech[rows]] = self.rng.permutation(rows.size)
        priority = (
            sweep[proposer] * config.max_conns
            + _contiguous_ranks(prop_row)
        )

        key = (
            np.minimum(proposer, candidate) * cap
            + np.maximum(proposer, candidate)
        )
        ok = np.ones(n_prop, dtype=bool)
        if config.connection_setup_prob < 1.0:
            idx = np.flatnonzero(ok)
            keep = (
                self.rng.random(idx.size) < config.connection_setup_prob
            )
            ok[idx[~keep]] = False
        injector = self.fault_injector
        if (
            injector is not None
            and injector.plan.handshake_failure_prob > 0.0
        ):
            idx = np.flatnonzero(ok)
            failed = injector.handshake_mask(idx.size)
            if failed.any():
                ok[idx[failed]] = False
        ok_idx = np.flatnonzero(ok)
        if ok_idx.size == 0:
            return
        # Dedupe duplicate proposals of the same unordered pair, keeping
        # the earliest sweep turn (the object backend's repeat draws of
        # a formed partner are wasted attempts, so they stay counted).
        keep = group_ranks(key[ok_idx], priority[ok_idx]) == 0
        keep_idx = ok_idx[keep]
        end_a = proposer[keep_idx]
        end_b = candidate[keep_idx]
        remaining = self.scratch.zeros("remaining", cap)
        remaining[leech] = open_slots
        priority = priority[keep_idx]
        # Iterated two-sided rank filter: each pass admits proposals
        # ranked inside both endpoints' residual capacity, then charges
        # the accepted ones and retries the rest — converging on the
        # sequential walk's fill level without its O(N) loop.
        accept = np.zeros(keep_idx.size, dtype=bool)
        pending = np.arange(keep_idx.size)
        for _ in range(3):
            if pending.size == 0:
                break
            pr = priority[pending]
            # Rank both endpoint roles in one group per slot: a peer
            # proposing while also being proposed to spends the same
            # open slots either way (the object backend's busy check
            # counts total partners, not per-role).
            ends = np.concatenate([end_a[pending], end_b[pending]])
            ranks = group_ranks(ends, np.concatenate([pr, pr]))
            n_pend = pending.size
            admitted = (ranks[:n_pend] < remaining[end_a[pending]]) & (
                ranks[n_pend:] < remaining[end_b[pending]]
            )
            if not admitted.any():
                break
            taken = pending[admitted]
            accept[taken] = True
            np.subtract.at(remaining, end_a[taken], 1)
            np.subtract.at(remaining, end_b[taken], 1)
            pending = pending[~admitted]
            if pending.size:
                # A failed attempt is wasted, not queued: proposals
                # whose endpoint ran out of slots can never be admitted
                # and must stop occupying ranks ahead of later-priority
                # proposals (the object backend's busy-candidate waste
                # does not reserve the proposer's own slot either).
                live = (remaining[end_a[pending]] > 0) & (
                    remaining[end_b[pending]] > 0
                )
                pending = pending[live]
        formed = int(accept.sum())
        if formed:
            # Sequential-sweep attempt accounting: a formed connection
            # consumes one of the candidate's open slots *before its
            # own turn* when the candidate proposes later, so that slot
            # never becomes an attempt in the object backend.
            acc = np.flatnonzero(accept)
            later = (sweep[end_b[acc]] >= 0) & (
                sweep[end_b[acc]] > sweep[end_a[acc]]
            )
            self.connection_stats.attempts -= int(later.sum())
        if formed:
            new_pairs = np.stack(
                [
                    np.minimum(end_a, end_b)[accept],
                    np.maximum(end_a, end_b)[accept],
                ],
                axis=1,
            )
            self._pairs = np.concatenate([self._pairs, new_pairs], axis=0)
        self.connection_stats.formed += formed

    # -- piece transfer ----------------------------------------------------
    def _rarity_snapshot(self) -> np.ndarray:
        """Round-start replication counts (one snapshot per round)."""
        if self._snapshot_round != self._rounds:
            self._snapshot_round = self._rounds
            self._counts_snapshot = self.piece_counts.copy()
        return self._counts_snapshot

    def _select_pieces(
        self,
        recv: np.ndarray,
        send: Optional[np.ndarray] = None,
        offer_words: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized piece choice per (receiver, sender) transfer.

        Candidates are the sender's (or explicit offer's) pieces the
        receiver lacks; the policy weights mirror
        :func:`~repro.sim.piece_selection.select_piece` — uniform below
        the random-first cutoff, ``(count + 1) ** -RARITY_EXPONENT``
        for noisy rarest, argmin-mask for strict rarest.  Returns -1
        for transfers with no candidates.
        """
        config = self.config
        store = self.store
        n = recv.size
        num_pieces = config.num_pieces
        out = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return out
        policy = config.piece_selection
        counts_snap = self._rarity_snapshot()
        if policy == "rarest":
            rarity_w = (counts_snap + 1.0) ** -RARITY_EXPONENT
        chunk = max(1, _CHUNK_CELLS // max(num_pieces, 1))
        for lo in range(0, n, chunk):
            hi = min(n, lo + chunk)
            if offer_words is not None:
                offered = offer_words[lo:hi]
            else:
                offered = store.bits[send[lo:hi]]
            cand_words = offered & ~store.bits[recv[lo:hi]]
            cand = unpack_rows(cand_words, num_pieces)
            if policy == "random":
                weights = cand.astype(np.float64)
            elif policy == "rarest":
                weights = cand * rarity_w[None, :]
                below = (
                    store.counts[recv[lo:hi]]
                    < config.random_first_cutoff
                )
                if below.any():
                    weights[below] = cand[below]
            else:  # strict-rarest
                masked = np.where(
                    cand, counts_snap[None, :], np.iinfo(np.int64).max
                )
                row_min = masked.min(axis=1)
                weights = (
                    (masked == row_min[:, None]) & cand
                ).astype(np.float64)
                below = (
                    store.counts[recv[lo:hi]]
                    < config.random_first_cutoff
                )
                if below.any():
                    weights[below] = cand[below]
            out[lo:hi] = weighted_pick_rows(weights, self.rng)
        return out

    def _apply_grants(
        self, r: np.ndarray, p: np.ndarray, time: float
    ) -> int:
        """Land granted pieces: bits, counts, replication, milestones.

        Callers guarantee ``(r, p)`` rows are unique and that no
        receiver already holds its piece (selection draws candidates
        from the live bitfields).
        """
        if r.size == 0:
            return 0
        store = self.store
        num_pieces = self.config.num_pieces
        word = (p >> 6).astype(np.int64)
        bit = _ONE << (p & 63).astype(np.uint64)
        np.bitwise_or.at(store.bits, (r, word), bit)
        affected = np.unique(r)
        before = store.counts[affected].copy()
        np.add.at(store.counts, r, 1)
        after = store.counts[affected]
        started = affected[(before == 0) & (after > 0)]
        store.first_piece_at[started] = time
        prelast = affected[
            (before < num_pieces - 1) & (after >= num_pieces - 1)
        ]
        store.prelast_at[prelast] = time
        self.piece_counts += np.bincount(p, minlength=num_pieces)
        return int(r.size)

    def _transfer(
        self,
        recv: np.ndarray,
        send: Optional[np.ndarray],
        time: float,
        offer_words: Optional[np.ndarray] = None,
        max_retry: int = 4,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run a batch of transfers, re-drawing collisions.

        The object backend applies grants sequentially, so two senders
        pointed at one receiver deliver two *distinct* pieces.  One
        batched draw would collide them onto the same piece and silently
        halve the receiver's round; instead, the first transfer per
        ``(receiver, piece)`` key lands and the collided remainder
        re-selects against the updated bitfields — a couple of
        iterations over a shrinking tail recovers the sequential
        cascade's throughput.  Returns the landed
        ``(recv, pieces, send)`` triples.
        """
        landed_recv: List[np.ndarray] = []
        landed_piece: List[np.ndarray] = []
        landed_send: List[np.ndarray] = []
        if send is None:
            send = np.full(recv.size, -1, dtype=np.int64)
        for _ in range(max_retry):
            if recv.size == 0:
                break
            pieces = self._select_pieces(
                recv,
                send=None if offer_words is not None else send,
                offer_words=offer_words,
            )
            valid = pieces >= 0
            recv_v = recv[valid]
            pieces_v = pieces[valid]
            send_v = send[valid]
            offer_v = offer_words[valid] if offer_words is not None else None
            if recv_v.size == 0:
                break
            key = recv_v * self.config.num_pieces + pieces_v
            _, first = np.unique(key, return_index=True)
            land = np.zeros(recv_v.size, dtype=bool)
            land[first] = True
            self._apply_grants(recv_v[land], pieces_v[land], time)
            landed_recv.append(recv_v[land])
            landed_piece.append(pieces_v[land])
            landed_send.append(send_v[land])
            recv = recv_v[~land]
            send = send_v[~land]
            if offer_v is not None:
                offer_words = offer_v[~land]
        if not landed_recv:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty
        return (
            np.concatenate(landed_recv),
            np.concatenate(landed_piece),
            np.concatenate(landed_send),
        )

    def _exchange(self, time: float) -> int:
        """Tit-for-tat swaps over the pair list, both directions batched."""
        pairs = self._pairs
        if pairs.shape[0] == 0:
            return 0
        config = self.config
        store = self.store
        a = pairs[:, 0]
        b = pairs[:, 1]
        give_ab, give_ba = interest_flags(
            store.bits, a, b,
            counts=store.counts, num_pieces=config.num_pieces,
        )
        if config.strict_tft:
            both = give_ab & give_ba
            act_ab = both
            act_ba = both
        else:
            act_ab = give_ab
            act_ba = give_ba
        if config.bandwidth_classes is not None:
            # Per-endpoint upload budget: rank the pairs randomly and
            # keep each pair only while both uplinks have capacity left.
            capacity = np.where(
                store.upload_capacity >= 0,
                store.upload_capacity,
                np.iinfo(np.int64).max,
            )
            priority = self.rng.permutation(pairs.shape[0])
            rank_a = group_ranks(a, priority)
            rank_b = group_ranks(b, priority)
            budget_ok = (rank_a < capacity[a]) & (rank_b < capacity[b])
            act_ab = act_ab & budget_ok
            act_ba = act_ba & budget_ok
        recv = np.concatenate([b[act_ab], a[act_ba]])
        send = np.concatenate([a[act_ab], b[act_ba]])
        if recv.size == 0:
            return 0
        landed, _, _ = self._transfer(recv, send, time)
        return landed.size

    def _seed_uploads(
        self, src: np.ndarray, dst: np.ndarray, time: float
    ) -> int:
        """Seed grants via the reverse edges of the leecher rows.

        Every (leecher, seed) relation appears exactly once as a leecher
        edge whose destination is a seed, so the seeds' interested
        neighbors come straight from the round's edge list — no seed
        rows needed.  Each seed serves up to ``seed_upload_slots``
        distinct receivers per round (rank filter = the object
        backend's ``permutation(interested)[:slots]``).
        """
        config = self.config
        store = self.store
        slots = config.seed_upload_slots
        if slots <= 0 or self._n_seeds == 0 or src.size == 0:
            return 0
        to_seed = store.is_seed[dst] & (
            store.counts[src] < config.num_pieces
        )
        s_recv = src[to_seed]
        s_seed = dst[to_seed]
        if s_recv.size == 0:
            return 0
        priority = self.rng.permutation(s_recv.size)
        rank = group_ranks(s_seed, priority)
        chosen = rank < slots
        s_recv = s_recv[chosen]
        s_seed = s_seed[chosen]
        if config.super_seeding:
            for seed_slot in np.unique(s_seed):
                remaining = (
                    ~store.seeded[seed_slot] & self._full_words
                )
                if not remaining.any():
                    # Every piece injected at least once: reset the
                    # restriction (the seed starts a second pass).
                    store.seeded[seed_slot] = 0
            offer = ~store.seeded[s_seed] & self._full_words[None, :]
            landed, pieces, senders = self._transfer(
                s_recv, s_seed, time, offer_words=offer
            )
            for seed_slot, piece in zip(senders, pieces):
                store.seeded[int(seed_slot), int(piece) >> 6] |= (
                    _ONE << np.uint64(int(piece) & 63)
                )
        else:
            landed, _, _ = self._transfer(s_recv, s_seed, time)
        self.seed_upload_count += landed.size
        return landed.size

    def _donations(self, leech: np.ndarray, time: float) -> int:
        """Optimistic unchokes: free pieces for neighbors that can't pay."""
        config = self.config
        prob = config.optimistic_unchoke_prob
        if prob <= 0.0 or leech.size == 0:
            return 0
        store = self.store
        donating = (store.counts[leech] >= 1) & (
            self.rng.random(leech.size) < prob
        )
        donors = leech[donating]
        if donors.size == 0:
            return 0
        d_src, d_dst, d_row = self._leech_edges(donors)
        if d_src.size == 0:
            return 0
        to_leech = ~store.is_seed[d_dst]
        if config.optimistic_targets == "empty":
            eligible = to_leech & (store.counts[d_dst] == 0)
        else:
            # Starved: wants something from the donor but has nothing
            # novel to trade back (post-exchange bitfields, like the
            # object backend's donation pass).
            give_dn, give_nd = interest_flags(
                store.bits, d_src, d_dst,
                counts=store.counts, num_pieces=config.num_pieces,
            )
            eligible = to_leech & give_dn & ~give_nd
        per_donor = np.bincount(d_row[eligible], minlength=donors.size)
        has_target = per_donor > 0
        if not has_target.any():
            return 0
        pool_dst = d_dst[eligible]
        starts = np.cumsum(per_donor) - per_donor
        rows = np.flatnonzero(has_target)
        u = self.rng.random(rows.size)
        span = per_donor[rows]
        pick = starts[rows] + np.minimum(
            (u * span).astype(np.int64), span - 1
        )
        receivers = pool_dst[pick]
        senders = donors[rows]
        landed, _, _ = self._transfer(receivers, senders, time)
        return landed.size

    # -- bookkeeping -------------------------------------------------------
    def _record_completion(self, slot: int, time: float) -> None:
        store = self.store
        stats = PeerStats(joined_at=float(store.joined_at[slot]))
        stats.completed_at = time
        # Compressed acquisition timeline: the phase boundaries the
        # paper's analyses read (first piece = bootstrap exit, B-1
        # pieces = last-phase entry, completion).
        timeline = []
        for mark in (store.first_piece_at[slot], store.prelast_at[slot]):
            if not math.isnan(mark):
                timeline.append(float(mark))
        timeline.append(time)
        stats.piece_times = timeline
        if not math.isnan(store.shaken_at[slot]):
            stats.shaken_at = float(store.shaken_at[slot])
        capacity = int(store.upload_capacity[slot])
        self.metrics.completed.append(
            CompletedDownload(
                peer_id=int(store.peer_id[slot]),
                joined_at=float(store.joined_at[slot]),
                completed_at=time,
                stats=stats,
                shaken=bool(store.shaken[slot]),
                upload_capacity=capacity if capacity >= 0 else None,
            )
        )

    def _handle_completions(self, time: float) -> None:
        config = self.config
        store = self.store
        done = np.flatnonzero(
            store.alive
            & ~store.is_seed
            & (store.counts >= config.num_pieces)
        )
        if done.size == 0:
            return
        for slot in done:
            self._record_completion(int(slot), time)
        if config.completed_become_seeds > 0:
            store.is_seed[done] = True
            store.seed_until[done] = time + config.completed_become_seeds
            self._n_leech -= done.size
            self._n_seeds += done.size
            # Converted seeds become counter-only like origin seeds:
            # their own rows are dropped (the symmetric halves survive
            # in the leechers' rows, which is all the reverse-edge seed
            # uploads read); their trading pairs are severed.
            store.nbr[done] = -1
            self._drop_pairs_touching(done)
        else:
            self._remove_peers(done)

    def _drop_pairs_touching(self, slots: np.ndarray) -> None:
        if self._pairs.shape[0] == 0:
            return
        gone = self.scratch.zeros("pair_gone", self.store.capacity, np.bool_)
        gone[slots] = True
        keep = ~(gone[self._pairs[:, 0]] | gone[self._pairs[:, 1]])
        if not keep.all():
            self._pairs = self._pairs[keep]

    def _scrub_rows(
        self, slots: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sever leecher ``slots``'s relations, batch-wise.

        Decrements every seed neighbor's relation counter (duplicates
        across slots accumulate via ``subtract.at``; entries within one
        row are unique) and returns the ``(holders, values)`` row
        deletions for the surviving leech neighbors — holders are the
        neighbors still carrying an entry, values the departing slot.
        """
        store = self.store
        deg = store.nbr_deg[slots]
        width = int(deg.max()) if deg.size else 0
        if width == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        sub = store.nbr[slots, :width]
        mask = np.arange(width)[None, :] < deg[:, None]
        entries = sub[mask]
        owners = np.repeat(slots, deg)
        seed_mask = store.is_seed[entries]
        np.subtract.at(store.nbr_deg, entries[seed_mask], 1)
        return entries[~seed_mask], owners[~seed_mask]

    def _handle_shakes(self, time: float) -> None:
        threshold = self.config.shake_threshold
        if threshold is None:
            return
        store = self.store
        num_pieces = self.config.num_pieces
        candidates = np.flatnonzero(
            store.alive
            & ~store.is_seed
            & ~store.shaken
            & (store.counts < num_pieces)
        )
        if candidates.size == 0:
            return
        ratios = store.counts[candidates] / num_pieces
        shakers = candidates[ratios >= threshold]
        if shakers.size == 0:
            return
        holders, values = self._scrub_rows(shakers)
        # Shakers may be mutual neighbors; drop cross-entries only from
        # rows that are not themselves being cleared below.
        shaking = self.scratch.zeros("shaking", store.capacity, np.bool_)
        shaking[shakers] = True
        outside = ~shaking[holders]
        store.remove_row_entries(holders[outside], values[outside])
        store.nbr[shakers] = -1
        store.nbr_deg[shakers] = 0
        store.shaken[shakers] = True
        store.shaken_at[shakers] = time
        self._drop_pairs_touching(shakers)
        injector = self.fault_injector
        if injector is not None:
            blocked = injector.shake_mask(shakers.size)
        else:
            blocked = np.zeros(shakers.size, dtype=bool)
        if (~blocked).any():
            self._announce_batch(shakers[~blocked])

    def _refill_neighbor_sets(self) -> None:
        config = self.config
        interval_rounds = max(
            int(config.announce_interval / config.piece_time), 1
        )
        if self._rounds % interval_rounds != 0:
            return
        store = self.store
        depleted = np.flatnonzero(
            store.alive
            & ~store.is_seed
            & (store.nbr_deg < config.ns_size)
        )
        if depleted.size:
            self._announce_batch(depleted)

    def _remove_peers(self, slots: np.ndarray) -> None:
        """Depart peers: scrub relations, replication counts, free slots."""
        store = self.store
        seed_departing = store.is_seed[slots]
        holders, values = self._scrub_rows(slots[~seed_departing])
        if seed_departing.any():
            # Seeds are counter-only: their relations live in leecher
            # rows, found by scanning the whole adjacency once.
            seed_slots = slots[seed_departing]
            hit = np.isin(store.nbr, seed_slots)
            counts = hit.sum(axis=1)
            hit_rows = np.flatnonzero(counts)
            if hit_rows.size:
                holders = np.concatenate(
                    [holders, np.repeat(hit_rows, counts[hit_rows])]
                )
                values = np.concatenate([values, store.nbr[hit]])
        if holders.size:
            departing = self.scratch.zeros(
                "departing", store.capacity, np.bool_
            )
            departing[slots] = True
            outside = ~departing[holders]
            store.remove_row_entries(holders[outside], values[outside])
        self.piece_counts -= unpack_rows(
            store.bits[slots], self.config.num_pieces
        ).sum(axis=0)
        seeds_gone = int(store.is_seed[slots].sum())
        self._n_seeds -= seeds_gone
        self._n_leech -= slots.size - seeds_gone
        self._drop_pairs_touching(slots)
        for pid in store.peer_id[slots].tolist():
            del self._id_to_slot[pid]
        store.release(slots)
        self._alive_dirty = True

    def _log_round(self, time: float, pot_full: np.ndarray) -> None:
        store = self.store
        metrics = self.metrics
        self._population_log.append((time, self._n_leech, self._n_seeds))
        degrees = None
        if (metrics.rounds_observed + 1) % metrics.entropy_every == 0:
            if metrics.entropy_includes_seeds:
                degrees = self.piece_counts
            else:
                degrees = self.piece_counts - self._n_seeds
        conn_counts = None
        leech_end = np.flatnonzero(store.alive & ~store.is_seed)
        if leech_end.size:
            partner_counts = self._partner_degrees()[leech_end]
            if metrics.occupancy_scope == "trading":
                in_scope = (store.counts[leech_end] >= 1) & (
                    pot_full[leech_end] >= 1
                )
                conn_counts = partner_counts[in_scope]
            else:
                conn_counts = partner_counts
        metrics.record_round(
            time,
            self._n_leech,
            self._n_seeds,
            degrees=degrees,
            conn_counts=conn_counts,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Soa snapshot document (dense arrays, ``backend`` marker)."""
        from repro.checkpoint.schema import snapshot_soa_swarm

        return snapshot_soa_swarm(self)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> SwarmResult:
        """Run to the configured horizon and return the result bundle."""
        start = _time.perf_counter()
        if not self._setup_done:
            self.setup()
        self.engine.run_until(self.config.max_time)
        return SwarmResult(
            config=self.config,
            metrics=self.metrics,
            instrumented=[],
            total_rounds=self._rounds,
            final_leechers=self._n_leech,
            final_seeds=self._n_seeds,
            tracker_population_log=list(self._population_log),
            connection_stats=self.connection_stats,
            seed_upload_count=self.seed_upload_count,
            events_processed=self.engine.processed_events,
            wall_time=_time.perf_counter() - start,
            fault_stats=(
                self.fault_injector.stats if self.fault_injector else None
            ),
            round_profile=(
                self.profiler.as_dict()
                if self.profiler is not None
                else None
            ),
            resumed_from_round=self.resumed_from_round,
            checkpoints_written=self.checkpoints_written,
            backend="soa",
        )
