"""Simulation configuration.

:class:`SimConfig` collects every configurable the paper names for its
simulator — the number of pieces ``B``, the maximum connections ``k``,
the peer-set size ``s``, the time to download a piece, and the arrival
process — plus the extensions exercised in the evaluation: seeds,
initial-population skew (stability study), peer-set shaking (last-piece
mitigation) and tracker bias (bootstrap mitigation).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ParameterError

__all__ = ["SimConfig"]

_ARRIVALS = ("poisson", "flash", "none")
_PIECE_POLICIES = ("rarest", "strict-rarest", "random", "sequential", "windowed")
_INITIAL_DISTRIBUTIONS = ("empty", "uniform", "skewed")


@dataclass(frozen=True)
class SimConfig:
    """Validated, immutable swarm-simulation configuration.

    Attributes:
        num_pieces: ``B`` — pieces the file is split into.
        max_conns: ``k`` — maximum simultaneous active connections.
        ns_size: ``s`` — target neighbor-set size requested from the
            tracker (real clients: 40-70; the paper sweeps 5-50).
        piece_time: duration of one piece exchange; one protocol round.
        piece_size_bytes: bytes per piece (256 KiB default, the
            BitTorrent convention) — used only to report cumulative
            bytes in traces.
        blocks_per_piece: sub-piece granularity (paper Section 2.1:
            pieces "are further split into blocks of a default size of
            16 KBs.  Therefore, a block is a basic transmission unit
            ...  However, a peer can start serving a block only after
            the entire piece is received and its correctness is
            verified").  With the default 1, a transfer moves a whole
            piece per round (the model's abstraction).  With more, each
            transfer moves one block, a piece joins the bitfield — and
            becomes tradable — only once all its blocks arrive, and the
            bootstrap latency of the *first* piece grows accordingly.
        arrival_process: ``"poisson"`` (rate ``arrival_rate``),
            ``"flash"`` (``flash_size`` peers at t=0 on top of the
            initial population), or ``"none"``.
        arrival_rate: expected arrivals per time unit for Poisson.
        flash_size: burst size for the flash-crowd process.
        initial_leechers: leechers present at t=0.
        initial_distribution: pieces held by the initial population —
            ``"empty"`` (fresh peers), ``"uniform"`` (each piece held
            i.i.d. with probability ``initial_fill``), or ``"skewed"``
            (as uniform, except ``skewed_pieces`` pieces are held only
            with probability ``initial_fill * skew_factor`` — the
            high-skew starting state of the stability experiments).
        initial_fill: per-piece hold probability for the seeded
            population.
        skewed_pieces: number of under-replicated pieces in the skewed
            start.
        skew_factor: replication multiplier (< 1) for skewed pieces.
        num_seeds: seeds present throughout the run (the origin seed(s)).
        seed_upload_slots: pieces each seed uploads per round — the
            paper's "capacity of the source".
        super_seeding: seeds offer each piece at most once until every
            piece has been injected (Section 7.2's advanced technique).
        completed_become_seeds: if > 0, a finishing leecher lingers as a
            seed for this many time units instead of departing
            immediately (the paper's model assumes immediate departure).
        abort_rate: per-round probability that a leecher abandons its
            download and leaves — the fluid model's ``theta``.  The
            paper's model assumes no aborts; this knob connects the
            simulator to the Qiu-Srikant baseline.
        bandwidth_classes: optional heterogeneous-bandwidth extension
            (the paper's assumption (ii) relaxed, cf. its Section 7):
            a tuple of ``(fraction, upload_capacity)`` pairs; each
            arriving leecher is assigned a class, and its *uploads* per
            round are capped at ``upload_capacity`` pieces.  ``None``
            (default) keeps the paper's homogeneous setting where every
            connection moves one piece each way per round.
        piece_selection: ``"rarest"`` (noisy-view rarest-first, the
            realistic default), ``"strict-rarest"`` (idealised shared-
            view argmin), ``"random"`` — the paper's two strategies plus
            the idealised variant — ``"sequential"`` (strictly in-order;
            starves strict-TFT swarms) or ``"windowed"`` (random within
            a sliding in-order window: the streaming compromise of the
            related work [1]).
        strict_tft: enforce strict tit-for-tat (both sides must offer
            something new); the paper's model assumption.
        optimistic_unchoke_prob: per-round probability that a peer
            donates one piece for free to a neighbor that cannot
            reciprocate — the optimistic-unchoke channel ("through
            optimistic unchoking from other downloaders").
        optimistic_targets: who optimistic unchokes may serve —
            ``"starved"`` (default, real BitTorrent: any interested
            neighbor with nothing to offer the donor, which is also how
            bootstrap- and last-phase-trapped peers escape) or
            ``"empty"`` (only zero-piece neighbors: a strict-tit-for-tat
            regime where trapped peers escape solely through
            neighbor-set churn, the assumption behind the model's
            ``alpha``/``gamma`` waits and the paper's shake experiment).
        connection_failure_prob: exogenous per-round connection failure
            (churn) on top of interest exhaustion — BitTorrent's
            periodic rechoke rotates partners even while interest
            remains; this is the sim-side source of the model's
            ``1 - p_r``.
        connection_setup_prob: probability that a slot-filling attempt
            on a willing candidate actually completes this round — the
            sim-side ``p_n`` (handshake/unchoke latency means a freshly
            opened slot does not always fill within one round).
        matching: connection-formation discipline — ``"blind"`` (one
            uniformly drawn candidate per open slot per round; fails on
            busy candidates, as decentralised peers cannot see slot
            occupancy) or ``"greedy"`` (idealised matchmaker ablation).
        random_first_cutoff: rarest-first peers holding fewer pieces
            than this select randomly (the protocol's random-first-piece
            rule).  Lower it for tiny ``B`` where 4 pieces is a large
            fraction of the file.
        announce_interval: rounds between tracker re-announces that
            refill a depleted neighbor set.
        ns_accept_factor: leechers accept inbound neighbor relations up
            to ``ns_accept_factor * ns_size``.  The default 2.0 yields
            well-mixed random graphs; 1.0 (a hard cap at the request
            target) makes bursts of sequential announces partition into
            clique-like clusters — the clustered regime where the
            bootstrap/last-piece traps bite hardest.
        tracker_bias_bootstrap: tracker steers newly arriving peers
            toward bootstrap-trapped ones (Section 4.3 suggestion).
        shake_threshold: completion fraction at which a peer "shakes"
            its peer set (Section 7.1); ``None`` disables shaking.
        max_time: simulation horizon.
        seed: RNG seed; fixed seeds give bit-identical runs.
    """

    num_pieces: int
    max_conns: int = 7
    ns_size: int = 50
    piece_time: float = 1.0
    piece_size_bytes: int = 256 * 1024
    blocks_per_piece: int = 1
    arrival_process: str = "poisson"
    arrival_rate: float = 1.0
    flash_size: int = 0
    initial_leechers: int = 20
    initial_distribution: str = "empty"
    initial_fill: float = 0.5
    skewed_pieces: int = 1
    skew_factor: float = 0.1
    num_seeds: int = 1
    seed_upload_slots: int = 2
    super_seeding: bool = False
    completed_become_seeds: float = 0.0
    abort_rate: float = 0.0
    bandwidth_classes: Optional[tuple] = None
    piece_selection: str = "rarest"
    strict_tft: bool = True
    optimistic_unchoke_prob: float = 0.2
    optimistic_targets: str = "starved"
    connection_failure_prob: float = 0.0
    connection_setup_prob: float = 1.0
    matching: str = "blind"
    random_first_cutoff: int = 4
    announce_interval: float = 5.0
    ns_accept_factor: float = 2.0
    tracker_bias_bootstrap: bool = False
    shake_threshold: Optional[float] = None
    max_time: float = 500.0
    seed: Optional[int] = field(default=0)

    def __post_init__(self) -> None:
        if self.num_pieces < 1:
            raise ParameterError(f"num_pieces must be >= 1, got {self.num_pieces}")
        if self.max_conns < 1:
            raise ParameterError(f"max_conns must be >= 1, got {self.max_conns}")
        if self.ns_size < 1:
            raise ParameterError(f"ns_size must be >= 1, got {self.ns_size}")
        if self.piece_time <= 0:
            raise ParameterError(f"piece_time must be > 0, got {self.piece_time}")
        if self.piece_size_bytes < 1:
            raise ParameterError(
                f"piece_size_bytes must be >= 1, got {self.piece_size_bytes}"
            )
        if self.blocks_per_piece < 1:
            raise ParameterError(
                f"blocks_per_piece must be >= 1, got {self.blocks_per_piece}"
            )
        if self.arrival_process not in _ARRIVALS:
            raise ParameterError(
                f"arrival_process must be one of {_ARRIVALS}, "
                f"got {self.arrival_process!r}"
            )
        if self.arrival_rate < 0:
            raise ParameterError(f"arrival_rate must be >= 0, got {self.arrival_rate}")
        if self.flash_size < 0:
            raise ParameterError(f"flash_size must be >= 0, got {self.flash_size}")
        if self.initial_leechers < 0:
            raise ParameterError(
                f"initial_leechers must be >= 0, got {self.initial_leechers}"
            )
        if self.initial_distribution not in _INITIAL_DISTRIBUTIONS:
            raise ParameterError(
                f"initial_distribution must be one of {_INITIAL_DISTRIBUTIONS}, "
                f"got {self.initial_distribution!r}"
            )
        for name in ("initial_fill", "skew_factor", "optimistic_unchoke_prob",
                     "connection_failure_prob", "connection_setup_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ParameterError(f"{name} must be in [0, 1], got {value}")
        if not 0 <= self.skewed_pieces <= self.num_pieces:
            raise ParameterError(
                f"skewed_pieces must be in 0..{self.num_pieces}, "
                f"got {self.skewed_pieces}"
            )
        if self.num_seeds < 0:
            raise ParameterError(f"num_seeds must be >= 0, got {self.num_seeds}")
        if self.seed_upload_slots < 0:
            raise ParameterError(
                f"seed_upload_slots must be >= 0, got {self.seed_upload_slots}"
            )
        if self.completed_become_seeds < 0:
            raise ParameterError(
                f"completed_become_seeds must be >= 0, "
                f"got {self.completed_become_seeds}"
            )
        if not 0.0 <= self.abort_rate <= 1.0:
            raise ParameterError(
                f"abort_rate must be in [0, 1], got {self.abort_rate}"
            )
        if self.bandwidth_classes is not None:
            classes = tuple(self.bandwidth_classes)
            if not classes:
                raise ParameterError("bandwidth_classes must be non-empty")
            total = 0.0
            for entry in classes:
                if len(entry) != 2:
                    raise ParameterError(
                        f"bandwidth class entries are (fraction, capacity) "
                        f"pairs, got {entry!r}"
                    )
                fraction, capacity = entry
                if fraction <= 0:
                    raise ParameterError(
                        f"bandwidth class fraction must be > 0, got {fraction}"
                    )
                if int(capacity) < 1:
                    raise ParameterError(
                        f"bandwidth class capacity must be >= 1, got {capacity}"
                    )
                total += fraction
            if abs(total - 1.0) > 1e-6:
                raise ParameterError(
                    f"bandwidth class fractions must sum to 1, got {total}"
                )
            object.__setattr__(self, "bandwidth_classes", classes)
        if self.piece_selection not in _PIECE_POLICIES:
            raise ParameterError(
                f"piece_selection must be one of {_PIECE_POLICIES}, "
                f"got {self.piece_selection!r}"
            )
        if self.optimistic_targets not in ("starved", "empty"):
            raise ParameterError(
                f"optimistic_targets must be 'starved' or 'empty', "
                f"got {self.optimistic_targets!r}"
            )
        if self.matching not in ("blind", "greedy"):
            raise ParameterError(
                f"matching must be 'blind' or 'greedy', got {self.matching!r}"
            )
        if self.random_first_cutoff < 0:
            raise ParameterError(
                f"random_first_cutoff must be >= 0, "
                f"got {self.random_first_cutoff}"
            )
        if self.announce_interval <= 0:
            raise ParameterError(
                f"announce_interval must be > 0, got {self.announce_interval}"
            )
        if self.ns_accept_factor < 1.0:
            raise ParameterError(
                f"ns_accept_factor must be >= 1, got {self.ns_accept_factor}"
            )
        if self.shake_threshold is not None and not 0.0 < self.shake_threshold <= 1.0:
            raise ParameterError(
                f"shake_threshold must be in (0, 1], got {self.shake_threshold}"
            )
        if self.max_time <= 0:
            raise ParameterError(f"max_time must be > 0, got {self.max_time}")

    def with_changes(self, **changes: object) -> "SimConfig":
        """Return a validated copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def file_size_bytes(self) -> int:
        """Total file size implied by ``B`` pieces of ``piece_size_bytes``."""
        return self.num_pieces * self.piece_size_bytes

    # ------------------------------------------------------------------
    # Serialisation (experiment reproducibility)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form, suitable for JSON (tuples become lists)."""
        out = dataclasses.asdict(self)
        if out.get("bandwidth_classes") is not None:
            out["bandwidth_classes"] = [
                list(entry) for entry in out["bandwidth_classes"]
            ]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        """Rebuild (and re-validate) a config from :meth:`to_dict` output.

        Raises:
            ParameterError: on unknown keys or invalid values.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ParameterError(
                f"unknown SimConfig fields: {sorted(unknown)}"
            )
        payload = dict(data)
        if payload.get("bandwidth_classes") is not None:
            payload["bandwidth_classes"] = tuple(
                tuple(entry) for entry in payload["bandwidth_classes"]
            )
        return cls(**payload)

    def to_json(self, *, indent: int = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimConfig":
        """Inverse of :meth:`to_json` (re-validates)."""
        return cls.from_dict(json.loads(text))
