"""Peer-set shaking — the Section 7.1 last-piece mitigation.

The paper's experiment: "when a peer completes 90% of its pieces, it
removes all its neighbors in its current peer set and gets a new
(randomly chosen) set of peers from the tracker for populating its peer
set.  We call this process shaking the peer set."  Shaking resamples
the neighborhood and thereby the potential set, sharply reducing the
time spent waiting for the last pieces (Figure 3/4(d)).
"""

from __future__ import annotations

from repro.sim.peer import Peer
from repro.sim.tracker import Tracker

__all__ = ["maybe_shake"]


def maybe_shake(
    peer: Peer,
    tracker: Tracker,
    threshold: float,
    time: float,
    *,
    injector=None,
) -> bool:
    """Shake ``peer``'s peer set once it crosses the completion threshold.

    Drops every neighbor (symmetrically) and every active connection,
    then re-announces to the tracker for a fresh random peer set.  Each
    peer shakes at most once per download.

    A :class:`~repro.faults.injector.FaultInjector` can fail the
    re-announce (the tracker is unreachable at the worst moment): the
    old peer set is already torn down, so the peer sits isolated until
    the next announce-interval refill — the degraded-shake regime.
    The re-announce also degrades implicitly when it lands inside a
    tracker outage window.

    Returns:
        True if a shake was performed this call.
    """
    if peer.shaken or peer.is_seed:
        return False
    if peer.completion_ratio() < threshold or peer.bitfield.is_complete:
        return False

    for neighbor_id in list(peer.neighbors):
        neighbor = tracker.get(neighbor_id)
        if neighbor is not None:
            neighbor.neighbors.discard(peer.peer_id)
            neighbor.partners.discard(peer.peer_id)
            tracker.notify_neighbors_changed(neighbor_id)
    peer.neighbors.clear()
    peer.partners.clear()
    tracker.notify_neighbors_changed(peer.peer_id)
    peer.shaken = True
    peer.stats.shaken_at = time
    if injector is not None and injector.fail_shake():
        return True  # shook into the void: re-announce never reached
    tracker.announce(peer)
    return True
