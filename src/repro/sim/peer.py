"""Peer state for the swarm simulator.

A :class:`Peer` carries the protocol-visible state (bitfield, neighbor
set, active connections) plus the per-peer statistics that the paper's
instrumented BitTornado client logged: arrival/completion times, the
per-round potential-set size, the acquisition time of every piece, and
cumulative bytes downloaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim.bitfield import Bitfield

__all__ = ["Peer", "PeerStats"]


@dataclass
class PeerStats:
    """Per-peer download statistics (the trace payload of Section 4.2).

    Attributes:
        joined_at: simulation time of arrival.
        completed_at: time the last piece arrived (None while leeching).
        piece_times: acquisition time of each piece, in acquisition
            order (``piece_times[j]`` = time the ``j+1``-th piece
            arrived) — yields the cumulative-bytes timeline.
        piece_log: ``(time, piece_index)`` per acquisition — the indexed
            counterpart of ``piece_times``, needed by in-order analyses
            such as streaming playback.
        potential_series: ``(time, potential_set_size)`` samples, one
            per round while the peer was present.
        connection_series: ``(time, active_connections)`` samples.
        shaken_at: time the peer shook its peer set, if it did.
    """

    joined_at: float = 0.0
    completed_at: Optional[float] = None
    piece_times: List[float] = field(default_factory=list)
    piece_log: List[tuple] = field(default_factory=list)
    potential_series: List[tuple] = field(default_factory=list)
    connection_series: List[tuple] = field(default_factory=list)
    shaken_at: Optional[float] = None

    def download_duration(self) -> Optional[float]:
        """Time from arrival to completion, or None if unfinished."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.joined_at


class Peer:
    """A participant in the swarm (leecher or seed)."""

    __slots__ = (
        "peer_id",
        "bitfield",
        "neighbors",
        "partners",
        "is_seed",
        "instrumented",
        "stats",
        "seeded_pieces",
        "shaken",
        "seed_until",
        "upload_capacity",
        "block_progress",
    )

    def __init__(
        self,
        peer_id: int,
        num_pieces: int,
        *,
        joined_at: float = 0.0,
        is_seed: bool = False,
        instrumented: bool = False,
    ):
        self.peer_id = peer_id
        self.bitfield = (
            Bitfield.full(num_pieces) if is_seed else Bitfield(num_pieces)
        )
        #: Symmetric neighbor relation, by peer id.
        self.neighbors: Set[int] = set()
        #: Currently active (unchoked, trading) connections, by peer id.
        self.partners: Set[int] = set()
        self.is_seed = is_seed
        #: Instrumented peers record full per-round series (the modified
        #: BitTornado client of Section 4.2); others keep only scalars.
        self.instrumented = instrumented
        self.stats = PeerStats(joined_at=joined_at)
        #: Pieces this seed has already injected (super-seeding mode).
        self.seeded_pieces: Set[int] = set()
        self.shaken = False
        #: For leechers that linger as seeds: departure deadline.
        self.seed_until: Optional[float] = None
        #: Uploads per round under heterogeneous bandwidth; None means
        #: unconstrained (the paper's homogeneous setting).
        self.upload_capacity: Optional[int] = None
        #: Blocks received for in-progress pieces (piece -> count);
        #: only populated when the swarm runs at sub-piece granularity.
        self.block_progress: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def num_pieces_held(self) -> int:
        return self.bitfield.count

    @property
    def is_complete(self) -> bool:
        return self.bitfield.is_complete

    def completion_ratio(self) -> float:
        """Fraction of the file downloaded."""
        return self.bitfield.count / self.bitfield.num_pieces

    def open_slots(self, max_conns: int) -> int:
        """Connection slots not currently in use."""
        return max(max_conns - len(self.partners), 0)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_piece(self, time: float, piece: Optional[int] = None) -> None:
        """Log a piece acquisition (call after ``bitfield.add``)."""
        self.stats.piece_times.append(time)
        if piece is not None:
            self.stats.piece_log.append((time, piece))
        if self.bitfield.is_complete and self.stats.completed_at is None:
            self.stats.completed_at = time

    def record_round(self, time: float, potential_size: int) -> None:
        """Log per-round series for instrumented peers."""
        if self.instrumented:
            self.stats.potential_series.append((time, potential_size))
            self.stats.connection_series.append((time, len(self.partners)))

    def __repr__(self) -> str:
        role = "seed" if self.is_seed else "leecher"
        return (
            f"Peer(id={self.peer_id}, {role}, "
            f"pieces={self.bitfield.count}/{self.bitfield.num_pieces}, "
            f"|NS|={len(self.neighbors)}, |conn|={len(self.partners)})"
        )

    # The simulator keys dict/sets by peer objects occasionally; identity
    # semantics (default) are correct, but define explicit hash on id for
    # determinism across runs.
    def __hash__(self) -> int:
        return hash(self.peer_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Peer):
            return NotImplemented
        return self.peer_id == other.peer_id
