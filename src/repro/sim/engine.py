"""Generic discrete-event engine.

A minimal, deterministic event loop: events are ``(time, seq, Event)``
triples in a binary heap, where ``seq`` is a monotonically increasing
tie-breaker so same-time events fire in scheduling order — making runs
bit-for-bit reproducible for a fixed RNG seed.

Handlers are registered per event kind; the swarm orchestrator
registers one handler per protocol activity (rounds, arrivals, tracker
announces, shakes).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ParameterError, SimulationError

__all__ = ["Event", "DiscreteEventEngine"]


@dataclass(frozen=True)
class Event:
    """A scheduled occurrence.

    Attributes:
        kind: dispatch key (string; the swarm uses e.g. ``"round"``,
            ``"arrival"``, ``"announce"``).
        payload: arbitrary handler data (peer ids, etc.).
    """

    kind: str
    payload: Any = field(default=None, compare=False)


class DiscreteEventEngine:
    """Deterministic heapq-backed event loop."""

    def __init__(self) -> None:
        self._queue: list = []
        # Explicit int counter (not itertools.count): the checkpoint
        # subsystem must capture and restore the exact tie-breaker
        # position for bit-identical resumes.
        self._next_seq = 0
        self._now = 0.0
        self._handlers: Dict[str, Callable[[float, Event], None]] = {}
        self._pre_dispatch: List[Callable[[float, Event], None]] = []
        self._processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events handled so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Registration / scheduling
    # ------------------------------------------------------------------
    def register(self, kind: str, handler: Callable[[float, Event], None]) -> None:
        """Register the handler for an event kind (one handler per kind)."""
        if kind in self._handlers:
            raise ParameterError(f"handler for event kind {kind!r} already registered")
        self._handlers[kind] = handler

    def add_pre_dispatch_hook(
        self, hook: Callable[[float, Event], None]
    ) -> None:
        """Register a hook called before *every* event dispatch.

        Hooks observe ``(time, event)`` ahead of the handler — fault
        injectors track the simulation clock this way, and invariant
        tests assert clock monotonicity.  Hooks run in registration
        order and must not schedule or mutate the queue.
        """
        self._pre_dispatch.append(hook)

    def schedule_at(self, time: float, event: Event) -> None:
        """Schedule ``event`` at absolute time ``time`` (>= now, finite)."""
        if not math.isfinite(time):
            # A NaN key would corrupt the heap invariant (every
            # comparison is False) and make run_until exit silently
            # with events still pending.
            raise SimulationError(
                f"cannot schedule event {event.kind!r} at non-finite "
                f"time {time}"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {event.kind!r} at {time} in the past "
                f"(now={self._now})"
            )
        heapq.heappush(self._queue, (time, self._next_seq, event))
        self._next_seq += 1

    def schedule_in(self, delay: float, event: Event) -> None:
        """Schedule ``event`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {event.kind!r}")
        self.schedule_at(self._now + delay, event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Pop and dispatch the next event; None if the queue is empty."""
        if not self._queue:
            return None
        time, _seq, event = heapq.heappop(self._queue)
        if time < self._now:
            # Tripwire for heap corruption: schedule_at validates its
            # inputs, so a backwards pop means the queue was mutated
            # behind the engine's back.
            raise SimulationError(
                f"event {event.kind!r} at {time} precedes the clock "
                f"(now={self._now}); event queue is corrupt"
            )
        self._now = time
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise SimulationError(f"no handler registered for event {event.kind!r}")
        # Count before dispatch: a checkpoint taken *inside* a handler
        # (the round hook) must include the event being handled, or the
        # resumed run's processed-event total comes up one short.
        self._processed += 1
        for hook in self._pre_dispatch:
            hook(time, event)
        handler(time, event)
        return event

    def run_until(
        self, end_time: float, *, max_events: Optional[int] = None
    ) -> int:
        """Dispatch events with time <= ``end_time``; returns count handled.

        Stops early when the queue drains.  ``max_events`` guards
        against runaway self-rescheduling loops.
        """
        handled = 0
        while self._queue and self._queue[0][0] <= end_time:
            if max_events is not None and handled >= max_events:
                raise SimulationError(
                    f"run_until exceeded max_events={max_events} before "
                    f"reaching t={end_time}"
                )
            self.step()
            handled += 1
        # Advance the clock to the horizon even if the queue drained early,
        # so successive run_until calls see monotone time.
        self._now = max(self._now, end_time)
        return handled

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        return self._queue[0][0] if self._queue else None

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable engine state (see ``repro.checkpoint.schema``).

        The pending queue is captured in its *internal heap order*; a
        restore that replays the same list reproduces the exact heap
        layout, and because ``(time, seq)`` is a total order, every
        subsequent pop agrees with the uninterrupted run.  Event
        payloads must be JSON-serializable (the swarm only schedules
        payload-free ``round``/``arrival`` events).
        """
        for _time, _seq, event in self._queue:
            if event.payload is not None and not isinstance(
                event.payload, (bool, int, float, str, list, dict)
            ):
                raise SimulationError(
                    f"cannot snapshot event {event.kind!r}: payload "
                    f"{event.payload!r} is not JSON-serializable"
                )
        return {
            "now": self._now,
            "next_seq": self._next_seq,
            "processed": self._processed,
            "queue": [
                [time, seq, event.kind, event.payload]
                for time, seq, event in self._queue
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore the counterpart of :meth:`snapshot_state`.

        Handlers and pre-dispatch hooks are *not* part of the state:
        they are re-registered by the owning orchestrator before this
        call.
        """
        self._now = float(state["now"])
        self._next_seq = int(state["next_seq"])
        self._processed = int(state["processed"])
        self._queue = [
            (float(time), int(seq), Event(str(kind), payload))
            for time, seq, kind, payload in state["queue"]
        ]
