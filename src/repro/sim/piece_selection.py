"""Piece-selection strategies (paper Section 2.1).

BitTorrent uses two piece-selection strategies:

* **random piece first** — a uniformly random needed piece;
* **rarest piece first** — "the piece held by the fewest number of
  neighbors is selected for download".

Rarity is evaluated against the *downloader's neighbor set* (the peer's
limited view of the network — the very modelling point the paper makes
against global-knowledge models), with ties broken uniformly at random.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import ParameterError
from repro.sim.bitfield import Bitfield
from repro.sim.peer import Peer
from repro.sim.tracker import Tracker

__all__ = ["neighborhood_rarity", "select_piece", "RarityView"]

#: A rarity view is either a sparse ``{piece: count}`` dict (the
#: neighborhood view — pieces held by nobody are absent) or a dense
#: per-piece count array (the swarm's global ``piece_counts`` snapshot,
#: indexed by piece).  Both encode the same counts; the array avoids
#: rebuilding a dict every round.
RarityView = Union[Dict[int, int], np.ndarray]


def neighborhood_rarity(peer: Peer, tracker: Tracker) -> Dict[int, int]:
    """Replication count of every piece within ``peer``'s neighbor set.

    Returns ``{piece_index: holders_among_neighbors}``; pieces held by
    no neighbor are absent (count 0).
    """
    counts: Dict[int, int] = {}
    for neighbor_id in peer.neighbors:
        neighbor = tracker.get(neighbor_id)
        if neighbor is None:
            continue
        for piece in neighbor.bitfield.pieces():
            counts[piece] = counts.get(piece, 0) + 1
    return counts


#: Below this many held pieces, rarest-first clients fall back to random
#: selection ("random first piece" in the BitTorrent spec): it fills the
#: first trading currency fast and — crucially for swarm health —
#: decorrelates freshly joined peers that would otherwise all chase the
#: same globally rarest piece and end up with identical bitfields.
RANDOM_FIRST_CUTOFF = 4

#: In-order window for the ``"windowed"`` streaming policy: candidates
#: within the next STREAM_WINDOW needed indices are preferred (chosen at
#: random within the window, which preserves swarm diversity); outside
#: the window the policy falls back to a random needed piece.
STREAM_WINDOW = 8

#: Sharpness of the noisy-view rarest-first sampling: selection weight
#: is ``(replication_count + 1) ** -RARITY_EXPONENT``.  Higher values
#: approach strict argmin behaviour; 3 gives a 16:1 preference for a
#: once-replicated piece over a thrice-replicated one.
RARITY_EXPONENT = 3.0


def select_piece(
    receiver: Bitfield,
    sender: Bitfield,
    policy: str,
    rng: np.random.Generator,
    *,
    rarity: Optional[RarityView] = None,
    exclude: Optional[set] = None,
    random_first_cutoff: int = RANDOM_FIRST_CUTOFF,
) -> Optional[int]:
    """Choose which piece ``sender`` uploads to ``receiver``.

    Args:
        receiver: the downloader's bitfield.
        sender: the uploader's bitfield.
        policy: ``"rarest"``, ``"strict-rarest"``, ``"random"``,
            ``"sequential"`` (strictly in-order), or ``"windowed"``
            (random within the next STREAM_WINDOW needed indices — the
            streaming compromise).
        rng: random source (tie-breaking / random policy).
        rarity: replication counts for rarest-first — a sparse
            neighborhood dict or a dense global count array (see
            :data:`RarityView`); when omitted (or an empty dict — no
            HAVE messages seen yet), rarest-first degrades to random.
            A dense array is always treated as a valid view: it comes
            from the swarm's global counts, which include the sender's
            own pieces, so it is never all-zero when candidates exist.
        exclude: pieces already committed this round (in-flight dedupe).
        random_first_cutoff: rarest-first receivers holding fewer than
            this many pieces select randomly instead (the protocol's
            random-first-piece rule).

    Returns:
        The selected piece index, or None when the sender has nothing
        the receiver needs (after exclusions).
    """
    if policy not in (
        "rarest", "strict-rarest", "random", "sequential", "windowed"
    ):
        raise ParameterError(f"unknown piece policy {policy!r}")
    candidates: List[int] = receiver.exchangeable_pieces_from(sender)
    if exclude:
        candidates = [p for p in candidates if p not in exclude]
    if not candidates:
        return None
    if policy == "sequential":
        # In-order (streaming) selection: the lowest-index needed piece.
        # Ignores rarity entirely; every peer chasing the same prefix
        # collapses mutual novelty and starves a strict-TFT swarm — the
        # negative result behind the related work [1]'s insistence on
        # "proper upload scheduling policies".
        return int(min(candidates))
    if policy == "windowed":
        # Streaming compromise: random selection *within* the next
        # STREAM_WINDOW needed indices keeps playback order roughly
        # intact while preserving the piece diversity tit-for-tat needs.
        first = receiver.first_missing()
        horizon = (first or 0) + STREAM_WINDOW
        in_window = [p for p in candidates if p < horizon]
        pool = in_window if in_window else candidates
        return int(pool[rng.integers(len(pool))])
    no_view = rarity is None or (isinstance(rarity, dict) and not rarity)
    if (
        policy == "random"
        or no_view
        or receiver.count < random_first_cutoff
    ):
        return int(candidates[rng.integers(len(candidates))])
    if isinstance(rarity, dict):
        counts = np.array([rarity.get(p, 0) for p in candidates], dtype=float)
    else:
        counts = rarity[candidates].astype(float)
    if policy == "strict-rarest":
        # Deterministic argmin (random tie-break): the idealised global
        # rarest-first.  With every peer sharing the same view this
        # synchronises download orders and collapses mutual novelty —
        # useful for studying exactly that artifact.
        best_count = counts.min()
        rarest = [p for p, c in zip(candidates, counts) if c == best_count]
        return int(rarest[rng.integers(len(rarest))])
    # "rarest": noisy-view rarest-first.  Real clients rank rarity from
    # HAVE messages within their own neighbor set, so their views — and
    # hence their choices — are decorrelated.  Sampling candidates with
    # weight (count + 1)^-RARITY_EXPONENT reproduces that: a strong
    # preference for rare pieces without the lock-step orders that
    # identical global views produce.  The inverse-transform draw below
    # replicates ``rng.choice(m, p=weights)`` — same cumsum, same
    # searchsorted side, same single uniform — at a fraction of its
    # argument-validation overhead.
    weights = (counts + 1.0) ** -RARITY_EXPONENT
    weights /= weights.sum()
    cdf = weights.cumsum()
    cdf /= cdf[-1]
    idx = min(int(cdf.searchsorted(rng.random(), side="right")),
              len(candidates) - 1)
    return int(candidates[idx])
