"""Swarm observers: every series the paper's figures are drawn from.

The :class:`MetricsCollector` is invoked once per protocol round by the
swarm orchestrator and accumulates:

* **population** — ``(time, leechers, seeds)``, Figure 3/4(b);
* **entropy** — ``(time, E)``, Figure 3/4(c);
* **connection occupancy** — time-averaged fractions ``x_0..x_k`` of
  leechers by active-connection count, from which the simulated
  efficiency ``eta`` of Figure 3/4(a) is computed;
* **completed downloads** — per-peer durations and piece timelines
  (instrumented peers keep their full per-round series, mirroring the
  paper's modified BitTornado client).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.efficiency.balance import efficiency_from_occupancy
from repro.errors import ParameterError
from repro.sim.peer import Peer, PeerStats
from repro.sim.tracker import Tracker
from repro.stability.entropy import entropy, replication_degrees

__all__ = ["CompletedDownload", "MetricsCollector"]


@dataclass(frozen=True)
class CompletedDownload:
    """Summary of one finished download.

    Attributes:
        peer_id: the downloader.
        joined_at / completed_at: arrival and completion times.
        stats: the peer's full :class:`PeerStats` (piece timeline,
            potential-set series when instrumented).
        shaken: whether the peer shook its peer set during the download.
        upload_capacity: the peer's bandwidth-class capacity (None in
            the homogeneous setting).
    """

    peer_id: int
    joined_at: float
    completed_at: float
    stats: PeerStats
    shaken: bool
    upload_capacity: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.completed_at - self.joined_at


class MetricsCollector:
    """Accumulates swarm-level and per-peer series during a run.

    Args:
        max_conns: ``k`` (sizes the occupancy histogram).
        entropy_every: sample entropy every this many rounds (entropy
            costs O(N * B); 1 samples every round).
        entropy_includes_seeds: count seeds in replication degrees.
        occupancy_warmup: fraction of the run (by round count) discarded
            before occupancy/efficiency accumulation starts, so the
            cold-start transient does not bias the equilibrium estimate.
        occupancy_scope: which leechers enter the occupancy histogram.
            ``"trading"`` (default) counts peers in the efficient
            download phase — holding at least one piece with a
            non-empty potential set — which is exactly the population
            the Section-5 connection chain models; ``"all"`` counts
            every leecher (bootstrap and last-phase peers included).
    """

    def __init__(
        self,
        max_conns: int,
        *,
        entropy_every: int = 1,
        entropy_includes_seeds: bool = True,
        occupancy_warmup: float = 0.25,
        occupancy_scope: str = "trading",
    ):
        if max_conns < 1:
            raise ParameterError(f"max_conns must be >= 1, got {max_conns}")
        if entropy_every < 1:
            raise ParameterError(f"entropy_every must be >= 1, got {entropy_every}")
        if not 0.0 <= occupancy_warmup < 1.0:
            raise ParameterError(
                f"occupancy_warmup must be in [0, 1), got {occupancy_warmup}"
            )
        if occupancy_scope not in ("trading", "all"):
            raise ParameterError(
                f"occupancy_scope must be 'trading' or 'all', "
                f"got {occupancy_scope!r}"
            )
        self.occupancy_scope = occupancy_scope
        self.max_conns = max_conns
        self.entropy_every = entropy_every
        self.entropy_includes_seeds = entropy_includes_seeds
        self.occupancy_warmup = occupancy_warmup

        self.population_series: List[Tuple[float, int, int]] = []
        self.entropy_series: List[Tuple[float, float]] = []
        self.completed: List[CompletedDownload] = []
        #: ``(time, pieces_held_at_abort)`` for leechers that gave up.
        self.aborted: List[Tuple[float, int]] = []
        self.rounds_observed = 0
        #: Raw occupancy counts indexed by connection count, one row per
        #: round (ring-accumulated as sums to bound memory).
        self._occupancy_sums = np.zeros(max_conns + 1, dtype=np.float64)
        self._occupancy_rounds = 0
        self._round_log: List[Tuple[float, np.ndarray]] = []
        self._expected_total_rounds: Optional[int] = None

    # ------------------------------------------------------------------
    # Configuration from the swarm
    # ------------------------------------------------------------------
    def set_expected_rounds(self, total_rounds: int) -> None:
        """Tell the collector the planned run length (for warmup cutoff)."""
        self._expected_total_rounds = total_rounds

    @property
    def _warmup_rounds(self) -> int:
        if self._expected_total_rounds is None:
            return 0
        return int(self._expected_total_rounds * self.occupancy_warmup)

    # ------------------------------------------------------------------
    # Hooks called by the swarm
    # ------------------------------------------------------------------
    def on_round_end(
        self,
        time: float,
        tracker: Tracker,
        potential_sizes: Dict[int, int],
    ) -> None:
        """Record one round's swarm-level samples."""
        self.rounds_observed += 1
        leech, seeds = tracker.counts()
        self.population_series.append((time, leech, seeds))

        if self.rounds_observed % self.entropy_every == 0:
            peers = (
                tracker.peers()
                if self.entropy_includes_seeds
                else tracker.leechers()
            )
            bitfields = [p.bitfield for p in peers]
            if bitfields:
                degrees = replication_degrees(bitfields, bitfields[0].num_pieces)
                self.entropy_series.append((time, entropy(degrees)))
            else:
                self.entropy_series.append((time, 1.0))

        if self.rounds_observed > self._warmup_rounds:
            histogram = np.zeros(self.max_conns + 1, dtype=np.float64)
            total = 0
            for peer in tracker.leechers():
                if self.occupancy_scope == "trading":
                    if peer.bitfield.count < 1:
                        continue  # bootstrap: not yet in the connection chain
                    if potential_sizes.get(peer.peer_id, 0) < 1:
                        continue  # last phase: nobody to connect to
                connections = min(len(peer.partners), self.max_conns)
                histogram[connections] += 1
                total += 1
            if total > 0:
                self._occupancy_sums += histogram / total
                self._occupancy_rounds += 1

    def record_round(
        self,
        time: float,
        leechers: int,
        seeds: int,
        *,
        degrees: Optional[np.ndarray] = None,
        conn_counts: Optional[np.ndarray] = None,
    ) -> None:
        """Array-native counterpart of :meth:`on_round_end`.

        Used by the soa backend, which has no :class:`Tracker` of peer
        objects to iterate.  The caller supplies pre-aggregated arrays:

        Args:
            time: round-end simulation time.
            leechers / seeds: live population counts.
            degrees: per-piece replication degrees for the entropy
                sample (respecting ``entropy_includes_seeds``); only
                consulted on entropy-sampling rounds.
            conn_counts: active-connection counts for the leechers in
                the occupancy scope (the caller applies the ``trading``
                filter); only consulted after the warmup.
        """
        self.rounds_observed += 1
        self.population_series.append((time, leechers, seeds))

        if self.rounds_observed % self.entropy_every == 0:
            if degrees is not None and len(degrees) and (leechers + seeds) > 0:
                self.entropy_series.append((time, entropy(degrees)))
            else:
                self.entropy_series.append((time, 1.0))

        if self.rounds_observed > self._warmup_rounds:
            if conn_counts is not None and len(conn_counts):
                clipped = np.minimum(conn_counts, self.max_conns)
                histogram = np.bincount(
                    clipped, minlength=self.max_conns + 1
                ).astype(np.float64)
                self._occupancy_sums += histogram / len(conn_counts)
                self._occupancy_rounds += 1

    def record_abort(self, time: float, pieces_held: int) -> None:
        """Array-native counterpart of :meth:`on_peer_abort`."""
        self.aborted.append((time, pieces_held))

    def on_peer_abort(self, peer: Peer, time: float) -> None:
        """Record a leecher abandoning its download (the fluid theta)."""
        self.aborted.append((time, peer.bitfield.count))

    def on_peer_complete(self, peer: Peer, time: float) -> None:
        """Record a finished download (called before the peer departs)."""
        self.completed.append(
            CompletedDownload(
                peer_id=peer.peer_id,
                joined_at=peer.stats.joined_at,
                completed_at=time,
                stats=peer.stats,
                shaken=peer.shaken,
                upload_capacity=peer.upload_capacity,
            )
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def occupancy(self) -> np.ndarray:
        """Time-averaged occupancy fractions ``x_0..x_k``.

        Raises:
            ParameterError: if no post-warmup rounds were observed.
        """
        if self._occupancy_rounds == 0:
            raise ParameterError(
                "no occupancy samples recorded (run too short for the warmup?)"
            )
        return self._occupancy_sums / self._occupancy_rounds

    def efficiency(self) -> float:
        """Simulated efficiency ``eta = (1/k) * sum(i * x_i)``."""
        return efficiency_from_occupancy(self.occupancy())

    def abort_count(self) -> int:
        """Number of abandoned downloads observed."""
        return len(self.aborted)

    def mean_download_duration(self) -> float:
        """Average duration over completed downloads (NaN if none)."""
        if not self.completed:
            return float("nan")
        return float(np.mean([c.duration for c in self.completed]))

    def population_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(times, leechers, seeds)`` as arrays, for plotting/benches."""
        if not self.population_series:
            return np.array([]), np.array([]), np.array([])
        times, leech, seeds = zip(*self.population_series)
        return np.asarray(times), np.asarray(leech), np.asarray(seeds)

    def entropy_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, entropy)`` arrays."""
        if not self.entropy_series:
            return np.array([]), np.array([])
        times, values = zip(*self.entropy_series)
        return np.asarray(times), np.asarray(values)
