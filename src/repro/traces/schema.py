"""Trace schema: what the instrumented client logs.

A :class:`ClientTrace` is the unit of measurement data — one client's
download in one swarm, as a time-ordered list of :class:`TraceSample`
rows carrying exactly the two series the paper plots in Figure 2:
cumulative bytes downloaded and the potential-set size (plus the active
connection count, which the model's ``n`` coordinate corresponds to).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import TraceError

__all__ = ["TraceSample", "ClientTrace"]


@dataclass(frozen=True)
class TraceSample:
    """One instrumentation sample.

    Attributes:
        time: sample timestamp (simulation time or seconds).
        cumulative_bytes: bytes downloaded so far.
        potential_set_size: members of the potential set at this time.
        active_connections: currently trading connections.
    """

    time: float
    cumulative_bytes: int
    potential_set_size: int
    active_connections: int

    def __post_init__(self) -> None:
        if self.cumulative_bytes < 0:
            raise TraceError(f"negative cumulative_bytes {self.cumulative_bytes}")
        if self.potential_set_size < 0:
            raise TraceError(
                f"negative potential_set_size {self.potential_set_size}"
            )
        if self.active_connections < 0:
            raise TraceError(
                f"negative active_connections {self.active_connections}"
            )


@dataclass
class ClientTrace:
    """A full instrumented download.

    Attributes:
        client_id: identifier of the measuring client.
        swarm_id: identifier of the swarm the client participated in.
        num_pieces: ``B`` for the torrent.
        piece_size_bytes: piece size (cumulative bytes advance in piece
            multiples).
        started_at: the client's join time.
        completed_at: completion time, or None if the download did not
            finish within the measurement window.
        samples: time-ordered samples.
    """

    client_id: str
    swarm_id: str
    num_pieces: int
    piece_size_bytes: int
    started_at: float
    completed_at: Optional[float] = None
    samples: List[TraceSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_pieces < 1:
            raise TraceError(f"num_pieces must be >= 1, got {self.num_pieces}")
        if self.piece_size_bytes < 1:
            raise TraceError(
                f"piece_size_bytes must be >= 1, got {self.piece_size_bytes}"
            )
        self.validate()

    # ------------------------------------------------------------------
    @property
    def file_size_bytes(self) -> int:
        return self.num_pieces * self.piece_size_bytes

    @property
    def is_complete(self) -> bool:
        return (
            bool(self.samples)
            and self.samples[-1].cumulative_bytes >= self.file_size_bytes
        )

    def pieces_downloaded(self) -> int:
        if not self.samples:
            return 0
        return self.samples[-1].cumulative_bytes // self.piece_size_bytes

    def duration(self) -> Optional[float]:
        """Join-to-completion time, None if unfinished."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def validate(self) -> None:
        """Schema invariants: monotone time and monotone bytes.

        Raises:
            TraceError: on violations.
        """
        previous_time = float("-inf")
        previous_bytes = -1
        for sample in self.samples:
            if sample.time < previous_time:
                raise TraceError(
                    f"trace {self.client_id}: non-monotone time at {sample.time}"
                )
            if sample.cumulative_bytes < previous_bytes:
                raise TraceError(
                    f"trace {self.client_id}: cumulative bytes decreased at "
                    f"t={sample.time}"
                )
            if sample.cumulative_bytes > self.file_size_bytes:
                raise TraceError(
                    f"trace {self.client_id}: cumulative bytes exceed file size"
                )
            previous_time = sample.time
            previous_bytes = sample.cumulative_bytes

    def append(self, sample: TraceSample) -> None:
        """Append a sample, enforcing monotonicity incrementally."""
        if self.samples:
            last = self.samples[-1]
            if sample.time < last.time:
                raise TraceError("appended sample moves backwards in time")
            if sample.cumulative_bytes < last.cumulative_bytes:
                raise TraceError("appended sample decreases cumulative bytes")
        if sample.cumulative_bytes > self.file_size_bytes:
            raise TraceError("appended sample exceeds file size")
        self.samples.append(sample)

    # Convenience series accessors -------------------------------------
    def times(self) -> List[float]:
        return [s.time for s in self.samples]

    def bytes_series(self) -> List[int]:
        return [s.cumulative_bytes for s in self.samples]

    def potential_series(self) -> List[int]:
        return [s.potential_set_size for s in self.samples]

    def connection_series(self) -> List[int]:
        return [s.active_connections for s in self.samples]
