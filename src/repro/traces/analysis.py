"""Trace analysis: phase segmentation and swarm-selection filtering.

Two tools from the paper's measurement methodology:

* **Phase segmentation** — split a download trace into the bootstrap,
  efficient-download, and last-download phases from the potential-set
  series (bootstrap: the leading stretch with an empty potential set
  and at most one piece; last phase: the trailing stretch where the
  potential set has collapsed to ``<= last_phase_level``).
* **Swarm selection** — the paper selected "stable" swarms by manual
  inspection of tracker statistics ("number of peers involved in the
  download at a one hour resolution"), filtering out flash crowds
  (rapidly increasing populations) and dying swarms.
  :func:`classify_swarm` automates that filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError, TraceError
from repro.traces.schema import ClientTrace

__all__ = [
    "PhaseSegments",
    "phase_segments",
    "classify_trace",
    "classify_swarm",
    "summarize_trace",
    "download_rate_series",
]


@dataclass(frozen=True)
class PhaseSegments:
    """Durations of the three phases within one trace.

    Attributes:
        bootstrap: time from join until the peer first has both a piece
            and a non-empty potential set.
        efficient: time spent trading in between.
        last: time from the final potential-set collapse (at high
            completion) until the end of the trace.
        total: overall trace span.
    """

    bootstrap: float
    efficient: float
    last: float
    total: float

    def dominant_phase(self) -> str:
        """Which non-trading phase dominates *by time fraction*.

        Note: for archetype labelling prefer :func:`classify_trace`,
        which counts stall samples and is robust to fast downloads.
        """
        if self.total <= 0:
            return "empty"
        if self.bootstrap / self.total > 0.2:
            return "bootstrap"
        if self.last / self.total > 0.2:
            return "last"
        return "smooth"


def phase_segments(
    trace: ClientTrace,
    *,
    last_phase_level: int = 1,
    last_phase_completion: float = 0.5,
) -> PhaseSegments:
    """Segment a trace into the paper's three phases.

    Args:
        trace: the instrumented download.
        last_phase_level: potential-set size at or below which the peer
            counts as starved (the paper's Figure 2(d) shows a collapse
            to 1).
        last_phase_completion: minimum completion fraction for a
            starved stretch to count as the *last* phase rather than a
            bootstrap relapse.

    Raises:
        TraceError: for an empty trace.
    """
    if not trace.samples:
        raise TraceError("cannot segment an empty trace")
    times = np.asarray(trace.times())
    potential = np.asarray(trace.potential_series())
    bytes_dl = np.asarray(trace.bytes_series())
    piece = trace.piece_size_bytes
    total = float(times[-1] - times[0])

    # Bootstrap: leading samples with <= 1 piece and empty potential set.
    bootstrap_end = times[0]
    for t, pss, by in zip(times, potential, bytes_dl):
        if by > piece or pss > 0:
            bootstrap_end = t
            break
        bootstrap_end = t
    bootstrap = float(bootstrap_end - times[0])

    # Last phase: trailing samples at high completion with a starved
    # potential set.
    file_size = trace.file_size_bytes
    last_start = times[-1]
    for idx in range(len(times) - 1, -1, -1):
        starved = potential[idx] <= last_phase_level
        late = bytes_dl[idx] >= last_phase_completion * file_size
        if starved and late:
            last_start = times[idx]
        else:
            break
    last = float(times[-1] - last_start)

    efficient = max(total - bootstrap - last, 0.0)
    return PhaseSegments(
        bootstrap=bootstrap, efficient=efficient, last=last, total=total
    )


def classify_trace(
    trace: ClientTrace,
    *,
    significant_samples: int = 8,
    last_phase_level: int = 1,
    late_completion: float = 0.5,
) -> str:
    """Label a trace as ``"bootstrap"``, ``"last"``, or ``"smooth"``.

    The criteria count *stall samples* rather than time fractions, so a
    fast, healthy download is not mislabelled just because its absolute
    duration is short:

    * ``"bootstrap"`` — the leading run of samples with an empty
      potential set and at most one piece is at least
      ``significant_samples`` long (the paper's Fig. 2(e,f): download
      rate pinned at 0 until the potential set escapes state 0);
    * ``"last"`` — at completion >= ``late_completion``, at least
      ``significant_samples`` samples have a potential set at or below
      ``last_phase_level`` (Fig. 2(c,d): the set collapses to ~1 late);
    * ``"smooth"`` otherwise (Fig. 2(a,b)).

    Returns ``"empty"`` for a sample-less trace.
    """
    if not trace.samples:
        return "empty"
    piece = trace.piece_size_bytes
    file_size = trace.file_size_bytes

    leading_stall = 0
    for sample in trace.samples:
        if sample.potential_set_size == 0 and sample.cumulative_bytes <= piece:
            leading_stall += 1
        else:
            break
    if leading_stall >= significant_samples:
        return "bootstrap"

    late_starved = sum(
        1
        for sample in trace.samples
        if sample.cumulative_bytes >= late_completion * file_size
        and sample.potential_set_size <= last_phase_level
        and sample.cumulative_bytes < file_size
    )
    if late_starved >= significant_samples:
        return "last"
    return "smooth"


def download_rate_series(
    trace: ClientTrace, *, window: float = 5.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Windowed download rate (bytes per time unit) from a trace."""
    if window <= 0:
        raise ParameterError(f"window must be > 0, got {window}")
    times = np.asarray(trace.times(), dtype=float)
    bytes_dl = np.asarray(trace.bytes_series(), dtype=float)
    if times.size < 2:
        return times, np.zeros_like(times)
    rates = np.zeros_like(times)
    for idx, t in enumerate(times):
        lo = np.searchsorted(times, t - window, side="left")
        span = times[idx] - times[lo]
        if span > 0:
            rates[idx] = (bytes_dl[idx] - bytes_dl[lo]) / span
    return times, rates


def classify_swarm(
    population_log: Sequence[Tuple[float, int, int]],
    *,
    resolution: float = 60.0,
    flash_ratio: float = 1.5,
    dying_ratio: float = 0.5,
) -> str:
    """Classify a swarm from tracker population statistics.

    Mirrors the paper's selection criterion: population sampled at a
    coarse ("one hour") resolution; "rapidly increasing numbers of
    peers" mean a flash crowd, sustained shrinkage a dying swarm,
    anything else is stable.  The verdict compares the mean population
    of the final bucket against the first.

    Args:
        population_log: tracker ``(time, leechers, seeds)`` records.
        resolution: aggregation bucket width ("one hour" analogue).
        flash_ratio: final/initial population ratio at or above which
            the swarm is a flash crowd.
        dying_ratio: final/initial ratio at or below which the swarm is
            dying.

    Returns:
        One of ``"flash_crowd"``, ``"dying"``, ``"stable"``, or
        ``"unknown"`` (fewer than two buckets of data).
    """
    if not population_log:
        return "unknown"
    if flash_ratio <= 1.0 or not 0.0 < dying_ratio < 1.0:
        raise ParameterError(
            f"need flash_ratio > 1 and 0 < dying_ratio < 1, got "
            f"{flash_ratio} / {dying_ratio}"
        )
    times = np.asarray([row[0] for row in population_log], dtype=float)
    totals = np.asarray(
        [row[1] + row[2] for row in population_log], dtype=float
    )
    start, end = times[0], times[-1]
    if end - start < 2 * resolution:
        return "unknown"
    edges = np.arange(start, end + resolution, resolution)
    buckets: List[float] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        in_bucket = (times >= lo) & (times < hi)
        if in_bucket.any():
            buckets.append(float(totals[in_bucket].mean()))
    if len(buckets) < 2:
        return "unknown"
    first, last = buckets[0], buckets[-1]
    if first <= 0:
        return "flash_crowd" if last > 0 else "unknown"
    ratio = last / first
    if ratio >= flash_ratio:
        return "flash_crowd"
    if ratio <= dying_ratio:
        return "dying"
    return "stable"


def summarize_trace(trace: ClientTrace) -> dict:
    """Compact per-trace summary (used by reports and the CLI)."""
    segments = phase_segments(trace) if trace.samples else None
    return {
        "client_id": trace.client_id,
        "swarm_id": trace.swarm_id,
        "pieces": trace.pieces_downloaded(),
        "num_pieces": trace.num_pieces,
        "complete": trace.is_complete,
        "duration": trace.duration(),
        "samples": len(trace.samples),
        "dominant_phase": classify_trace(trace),
        "bootstrap_time": segments.bootstrap if segments else 0.0,
        "efficient_time": segments.efficient if segments else 0.0,
        "last_time": segments.last if segments else 0.0,
    }
