"""Trace collection from simulated swarms.

The paper's measurement client is a modified BitTornado "injected into
real-world BitTorrent swarms [that] actively participated in logging
download progress information" — and, because the model assumes strict
tit-for-tat, "during the measurements we did not allow the modified
client to interact with the seeds".

:func:`collect_traces` reproduces that setup on the simulator: it
instruments the first ``num_clients`` leechers of a swarm, optionally
blocks their seed interaction, and converts the per-round logs into
:class:`~repro.traces.schema.ClientTrace` objects.
"""

from __future__ import annotations

from typing import List

from repro.errors import ParameterError
from repro.sim.config import SimConfig
from repro.sim.peer import Peer
from repro.sim.swarm import Swarm
from repro.traces.schema import ClientTrace, TraceSample

__all__ = ["collect_traces", "trace_from_peer"]


def trace_from_peer(
    peer: Peer,
    *,
    swarm_id: str,
    num_pieces: int,
    piece_size_bytes: int,
) -> ClientTrace:
    """Convert an instrumented peer's logs into a :class:`ClientTrace`.

    The cumulative-bytes series is reconstructed by counting, for each
    potential-set sample time, the pieces acquired up to that time
    (piece acquisition times are logged separately from round samples).
    """
    if not peer.instrumented:
        raise ParameterError(
            f"peer {peer.peer_id} was not instrumented; no series to convert"
        )
    trace = ClientTrace(
        client_id=f"peer-{peer.peer_id}",
        swarm_id=swarm_id,
        num_pieces=num_pieces,
        piece_size_bytes=piece_size_bytes,
        started_at=peer.stats.joined_at,
        completed_at=peer.stats.completed_at,
    )
    piece_times = peer.stats.piece_times
    connection_by_time = dict(peer.stats.connection_series)
    acquired = 0
    for time, potential_size in peer.stats.potential_series:
        while acquired < len(piece_times) and piece_times[acquired] <= time:
            acquired += 1
        trace.append(
            TraceSample(
                time=time,
                cumulative_bytes=acquired * piece_size_bytes,
                potential_set_size=potential_size,
                active_connections=connection_by_time.get(time, 0),
            )
        )
    return trace


def collect_traces(
    config: SimConfig,
    num_clients: int,
    *,
    avoid_seeds: bool = True,
    swarm_id: str = "sim-swarm",
) -> List[ClientTrace]:
    """Run a swarm with instrumented clients and return their traces.

    Args:
        config: swarm configuration.
        num_clients: how many (initially arriving) leechers to
            instrument.
        avoid_seeds: block seed uploads to the instrumented clients,
            matching the paper's strict-tit-for-tat measurement setup.
        swarm_id: label recorded on the traces.
    """
    if num_clients < 1:
        raise ParameterError(f"num_clients must be >= 1, got {num_clients}")
    swarm = Swarm(
        config,
        instrument_first=num_clients,
        instrumented_avoid_seeds=avoid_seeds,
    )
    result = swarm.run()
    return [
        trace_from_peer(
            peer,
            swarm_id=swarm_id,
            num_pieces=config.num_pieces,
            piece_size_bytes=config.piece_size_bytes,
        )
        for peer in result.instrumented
    ]
