"""Synthetic reconstruction of the Figure-2 download archetypes.

The paper's Figure 2 shows three instances of real downloads:

* **(a, b) smooth** — the potential set "grows very fast in the
  beginning and remains greater than 15 throughout", giving a smooth
  download from start to finish;
* **(c, d) significant last phase** — the potential set "drops to 1
  towards the later stages of the download";
* **(e, f) significant bootstrap phase** — the potential set "is equal
  to 0 during the initial part of the download process and hence the
  download rate remains 0".

Each archetype is regenerated here from first principles by putting the
instrumented client into swarm conditions that provoke it:

* smooth: a large neighbor set in a diverse, well-populated swarm;
* last phase: a small neighbor set whose members run out of novel
  pieces as the client nears completion, with a slow arrival trickle
  (the model's small ``gamma``);
* bootstrap: an initial population of nearly complete, highly
  overlapping peers — the client's first donated piece is tradable with
  nobody, so it waits for fresh arrivals (the model's small ``alpha``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.chain import DownloadChain
from repro.errors import ParameterError
from repro.sim.config import SimConfig
from repro.traces.analysis import classify_trace
from repro.traces.collector import collect_traces
from repro.traces.schema import ClientTrace, TraceSample

__all__ = [
    "ArchetypeSpec",
    "ARCHETYPES",
    "archetype_config",
    "generate_archetype",
    "trace_from_chain",
]


@dataclass(frozen=True)
class ArchetypeSpec:
    """One Figure-2 archetype: config factory plus the expected label."""

    name: str
    figure_panels: str
    expected_phase: str
    description: str


ARCHETYPES: Dict[str, ArchetypeSpec] = {
    "smooth": ArchetypeSpec(
        name="smooth",
        figure_panels="2(a,b)",
        expected_phase="smooth",
        description="large neighbor set, diverse healthy swarm",
    ),
    "last": ArchetypeSpec(
        name="last",
        figure_panels="2(c,d)",
        expected_phase="last",
        description="small neighbor set starves near completion",
    ),
    "bootstrap": ArchetypeSpec(
        name="bootstrap",
        figure_panels="2(e,f)",
        expected_phase="bootstrap",
        description="overlapping near-complete neighborhood traps the first piece",
    ),
}


def archetype_config(kind: str, *, seed: int = 0) -> SimConfig:
    """Swarm configuration that provokes the requested archetype."""
    if kind == "smooth":
        return SimConfig(
            num_pieces=60,
            max_conns=7,
            ns_size=40,
            arrival_process="poisson",
            arrival_rate=2.0,
            initial_leechers=80,
            initial_distribution="uniform",
            initial_fill=0.4,
            num_seeds=2,
            seed_upload_slots=3,
            optimistic_unchoke_prob=0.5,
            piece_selection="rarest",
            max_time=120.0,
            seed=seed,
        )
    if kind == "last":
        return SimConfig(
            num_pieces=60,
            max_conns=4,
            ns_size=6,
            arrival_process="poisson",
            arrival_rate=0.15,
            initial_leechers=18,
            initial_distribution="skewed",
            initial_fill=0.55,
            skewed_pieces=3,
            skew_factor=0.1,
            num_seeds=1,
            seed_upload_slots=1,
            optimistic_unchoke_prob=0.5,
            optimistic_targets="empty",
            piece_selection="random",
            announce_interval=1000.0,  # no neighbor-set refills: starve
            max_time=400.0,
            seed=seed,
        )
    if kind == "bootstrap":
        return SimConfig(
            num_pieces=60,
            max_conns=4,
            ns_size=10,
            arrival_process="poisson",
            arrival_rate=0.08,
            initial_leechers=25,
            initial_distribution="uniform",
            initial_fill=0.93,
            num_seeds=1,
            seed_upload_slots=1,
            optimistic_unchoke_prob=0.6,
            optimistic_targets="empty",
            piece_selection="random",
            max_time=400.0,
            seed=seed,
        )
    raise ParameterError(
        f"unknown archetype {kind!r}; expected one of {sorted(ARCHETYPES)}"
    )


def trace_from_chain(
    chain: DownloadChain,
    *,
    seed: int = 0,
    piece_size_bytes: int = 256 * 1024,
    client_id: str = "model-client",
    swarm_id: str = "model",
) -> ClientTrace:
    """Render one model-chain trajectory as a :class:`ClientTrace`.

    Bridges the analytical model into the trace toolchain: ``b`` maps
    to cumulative bytes, ``i`` to the potential-set size, ``n`` to the
    active connections, one sample per round.  Used to validate the
    trace-based parameter calibration against known ground truth.
    """
    trajectory = chain.trajectory(seed=seed)
    trace = ClientTrace(
        client_id=client_id,
        swarm_id=swarm_id,
        num_pieces=chain.params.num_pieces,
        piece_size_bytes=piece_size_bytes,
        started_at=0.0,
    )
    for round_index, state in enumerate(trajectory):
        trace.append(
            TraceSample(
                time=float(round_index),
                cumulative_bytes=state.b * piece_size_bytes,
                potential_set_size=state.i,
                active_connections=state.n,
            )
        )
    if trace.is_complete:
        trace.completed_at = float(len(trajectory) - 1)
    return trace


def generate_archetype(
    kind: str,
    *,
    seed: int = 0,
    max_attempts: int = 8,
) -> Tuple[ClientTrace, SimConfig]:
    """Generate one archetype trace, retrying seeds until it matches.

    Stochastic swarms do not produce the target phase signature on
    every seed (neither did the paper's live swarms — they *selected*
    the three shown instances); this retries successive seeds until the
    phase segmentation labels the trace as expected.

    Returns:
        ``(trace, config)`` for the first matching run.

    Raises:
        ParameterError: for an unknown archetype kind.
        RuntimeError: if no matching trace is found in ``max_attempts``.
    """
    spec = ARCHETYPES.get(kind)
    if spec is None:
        raise ParameterError(
            f"unknown archetype {kind!r}; expected one of {sorted(ARCHETYPES)}"
        )
    last_trace: Optional[ClientTrace] = None
    for attempt in range(max_attempts):
        config = archetype_config(kind, seed=seed + attempt)
        traces = collect_traces(
            config, 1, avoid_seeds=True, swarm_id=f"{kind}-{seed + attempt}"
        )
        trace = traces[0]
        last_trace = trace
        if not trace.samples:
            continue
        if classify_trace(trace) == spec.expected_phase:
            return trace, config
    last_label = classify_trace(last_trace) if last_trace is not None else "n/a"
    raise RuntimeError(
        f"no {kind!r} archetype found in {max_attempts} attempts "
        f"(last label: {last_label})"
    )
