"""Trace persistence: JSON-lines and CSV.

Format (JSONL): the first line is a header object with the trace
metadata; every subsequent line is one sample.  Multiple traces per
file are supported by repeating the pattern; a header line is
recognised by its ``"type": "header"`` field.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Union

from repro.errors import TraceError
from repro.traces.schema import ClientTrace, TraceSample

__all__ = ["write_trace_jsonl", "read_trace_jsonl", "write_trace_csv"]

PathLike = Union[str, Path]


def write_trace_jsonl(traces: List[ClientTrace], path: PathLike) -> None:
    """Write traces to a JSONL file (header line + sample lines each)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for trace in traces:
            header = {
                "type": "header",
                "client_id": trace.client_id,
                "swarm_id": trace.swarm_id,
                "num_pieces": trace.num_pieces,
                "piece_size_bytes": trace.piece_size_bytes,
                "started_at": trace.started_at,
                "completed_at": trace.completed_at,
                "num_samples": len(trace.samples),
            }
            handle.write(json.dumps(header) + "\n")
            for sample in trace.samples:
                row = {
                    "type": "sample",
                    "t": sample.time,
                    "bytes": sample.cumulative_bytes,
                    "pss": sample.potential_set_size,
                    "conns": sample.active_connections,
                }
                handle.write(json.dumps(row) + "\n")


def read_trace_jsonl(path: PathLike) -> List[ClientTrace]:
    """Read traces written by :func:`write_trace_jsonl`.

    Raises:
        TraceError: on malformed lines, samples before any header, or a
            sample count that contradicts the header.
    """
    path = Path(path)
    traces: List[ClientTrace] = []
    current: ClientTrace | None = None
    expected: int | None = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{line_number}: invalid JSON") from exc
            kind = obj.get("type")
            if kind == "header":
                if current is not None and expected is not None:
                    _check_count(current, expected, path)
                current = ClientTrace(
                    client_id=obj["client_id"],
                    swarm_id=obj["swarm_id"],
                    num_pieces=obj["num_pieces"],
                    piece_size_bytes=obj["piece_size_bytes"],
                    started_at=obj["started_at"],
                    completed_at=obj.get("completed_at"),
                )
                expected = obj.get("num_samples")
                traces.append(current)
            elif kind == "sample":
                if current is None:
                    raise TraceError(
                        f"{path}:{line_number}: sample before any header"
                    )
                current.append(
                    TraceSample(
                        time=obj["t"],
                        cumulative_bytes=obj["bytes"],
                        potential_set_size=obj["pss"],
                        active_connections=obj["conns"],
                    )
                )
            else:
                raise TraceError(
                    f"{path}:{line_number}: unknown record type {kind!r}"
                )
    if current is not None and expected is not None:
        _check_count(current, expected, path)
    return traces


def _check_count(trace: ClientTrace, expected: int, path: Path) -> None:
    if len(trace.samples) != expected:
        raise TraceError(
            f"{path}: trace {trace.client_id} has {len(trace.samples)} samples, "
            f"header promised {expected}"
        )


def write_trace_csv(trace: ClientTrace, path: PathLike) -> None:
    """Export a single trace as CSV (for spreadsheet/plotting tools)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["time", "cumulative_bytes", "potential_set_size", "active_connections"]
        )
        for sample in trace.samples:
            writer.writerow(
                [
                    sample.time,
                    sample.cumulative_bytes,
                    sample.potential_set_size,
                    sample.active_connections,
                ]
            )
