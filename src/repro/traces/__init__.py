"""Download traces: schema, collection, synthesis, and analysis.

Stands in for the paper's Section 4.2 measurement apparatus — a
modified BitTornado client injected into live swarms, logging the
download progress and potential-set evolution.  Live 2007 swarms no
longer exist, so:

* :mod:`repro.traces.collector` attaches the same instrumentation to
  simulated swarms (and, like the paper's client, can refuse all seed
  interaction so strict tit-for-tat is isolated);
* :mod:`repro.traces.synthetic` reconstructs the three download
  archetypes of Figure 2 (smooth / significant-last-phase /
  significant-bootstrap) from swarm conditions that provoke them;
* :mod:`repro.traces.analysis` segments traces into the three phases
  and implements the paper's swarm-selection filter (drop flash-crowd
  and dying swarms using tracker population statistics);
* :mod:`repro.traces.io` persists traces as JSON-lines / CSV.
"""

from repro.traces.analysis import (
    PhaseSegments,
    classify_swarm,
    classify_trace,
    phase_segments,
    summarize_trace,
)
from repro.traces.collector import collect_traces
from repro.traces.io import read_trace_jsonl, write_trace_jsonl
from repro.traces.schema import ClientTrace, TraceSample
from repro.traces.synthetic import ARCHETYPES, archetype_config, generate_archetype

__all__ = [
    "ClientTrace",
    "TraceSample",
    "collect_traces",
    "read_trace_jsonl",
    "write_trace_jsonl",
    "PhaseSegments",
    "phase_segments",
    "classify_trace",
    "classify_swarm",
    "summarize_trace",
    "ARCHETYPES",
    "archetype_config",
    "generate_archetype",
]
