"""Deterministic fault injection for the swarm simulator.

The subsystem has three layers (see ``docs/FAULTS.md``):

``repro.faults.plan``
    :class:`FaultPlan` / :class:`OutageWindow` — frozen, picklable
    declarations of what goes wrong (churn, connection breaks,
    handshake timeouts, shake failures, tracker outages) and
    :class:`FaultStats`, the counters of what actually fired.

``repro.faults.injector``
    :class:`FaultInjector` — draws the declared faults from its own
    seed-derived RNG stream (``derive_seed(seed, _FAULT_STREAM, salt)``)
    so a zero-intensity plan reproduces the fault-free run bit-for-bit.
    Hook points live in the tracker (announce outages), the choking
    module (connection breaks, handshake timeouts), the shake module
    (failed re-announces), and the swarm round loop (churn); the
    injector learns the simulation clock through the engine's
    pre-dispatch hook.

``repro.faults.chaos``
    :func:`run_chaos_sweep` — the fault-intensity sweep behind
    ``repro-bt chaos``, measuring efficiency degradation and download
    phase-boundary shifts against the balance-equation model, while
    exercising the executor's crash-recovery path.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultStats, OutageWindow

#: Chaos exports resolved lazily: ``repro.sim.swarm`` imports this
#: package for the injector, while ``repro.faults.chaos`` imports the
#: swarm — an eager import here would close that cycle.
_CHAOS_EXPORTS = (
    "ChaosResult",
    "chaos_point_task",
    "default_chaos_config",
    "default_chaos_plan",
    "run_chaos_sweep",
)


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ChaosResult",
    "chaos_point_task",
    "default_chaos_config",
    "default_chaos_plan",
    "run_chaos_sweep",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "OutageWindow",
]
