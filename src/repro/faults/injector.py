"""Runtime fault injection driven by a :class:`FaultPlan`.

The :class:`FaultInjector` is the single object the simulator consults
at every hook point (round churn, connection maintenance, slot filling,
shaking, tracker announces).  Two properties make it safe to wire in
unconditionally:

* **Stream isolation** — the injector draws from its *own* RNG, seeded
  with :func:`~repro.runtime.seeding.derive_seed` from the swarm's root
  seed on a dedicated path.  Attaching an injector therefore never
  perturbs the swarm's random stream, and a zero-intensity plan
  produces bit-identical runs to no plan at all.
* **Clock via the engine hook** — the injector learns the simulation
  time through the engine's pre-dispatch hook instead of having every
  call site thread ``time`` through, so outage windows apply to tracker
  announces that have no notion of time themselves.

Every fault actually fired is counted in :class:`FaultStats`; the
measured degradation of ``p_r``/``p_n`` then falls out of the swarm's
ordinary :class:`~repro.sim.choking.ConnectionStats`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.faults.plan import FaultPlan, FaultStats, OutageWindow
from repro.runtime.seeding import derive_seed

__all__ = ["FaultInjector"]

#: Dedicated path component separating the fault stream from every
#: experiment/replication path derived off the same root seed.
_FAULT_STREAM = 0xFA_017


class FaultInjector:
    """Draws fault events per a :class:`FaultPlan` (see module docstring).

    Args:
        plan: the declarative fault schedule.
        root_seed: the swarm's root seed; the injector's stream is
            ``derive_seed(root_seed, _FAULT_STREAM, plan.salt)``.
    """

    def __init__(self, plan: FaultPlan, root_seed: Optional[int] = 0):
        self.plan = plan
        self.stats = FaultStats()
        self.rng = np.random.default_rng(
            derive_seed(root_seed if root_seed is not None else 0,
                        _FAULT_STREAM, plan.salt)
        )
        #: Simulation clock, advanced by the engine's pre-dispatch hook.
        self.now = 0.0
        self._stale_snapshots: dict = {}

    # ------------------------------------------------------------------
    # Engine wiring
    # ------------------------------------------------------------------
    def observe(self, time: float, event=None) -> None:
        """Engine pre-dispatch hook: track the simulation clock."""
        self.now = time

    # ------------------------------------------------------------------
    # Peer churn
    # ------------------------------------------------------------------
    def churn_peer(self) -> bool:
        """Should this leecher be churned (abort mid-download) this round?"""
        if self.plan.churn_hazard <= 0.0:
            return False
        if self.rng.random() < self.plan.churn_hazard:
            self.stats.peers_churned += 1
            return True
        return False

    def churn_mask(self, count: int) -> np.ndarray:
        """Vectorized :meth:`churn_peer` for ``count`` leechers at once.

        One ``rng.random(count)`` call consumes the stream identically
        to ``count`` sequential :meth:`churn_peer` draws, so the swarm's
        batched churn pass reproduces the scalar loop bit-for-bit.
        """
        if self.plan.churn_hazard <= 0.0 or count <= 0:
            return np.zeros(max(count, 0), dtype=bool)
        mask = self.rng.random(count) < self.plan.churn_hazard
        self.stats.peers_churned += int(mask.sum())
        return mask

    # ------------------------------------------------------------------
    # Connection faults (the p_r / p_n degradation)
    # ------------------------------------------------------------------
    def break_connection(self) -> bool:
        """Should this surviving connection be torn down anyway?"""
        if self.plan.connection_break_prob <= 0.0:
            return False
        if self.rng.random() < self.plan.connection_break_prob:
            self.stats.connections_broken += 1
            return True
        return False

    def fail_handshake(self) -> bool:
        """Should this otherwise-successful handshake time out?"""
        if self.plan.handshake_failure_prob <= 0.0:
            return False
        if self.rng.random() < self.plan.handshake_failure_prob:
            self.stats.handshakes_failed += 1
            return True
        return False

    def break_mask(self, count: int) -> np.ndarray:
        """Vectorized :meth:`break_connection` for ``count`` connections.

        Like :meth:`churn_mask`, a zero-probability plan returns an
        all-false mask without consuming any RNG draws, preserving the
        zero-intensity bit-identity guarantee.
        """
        if self.plan.connection_break_prob <= 0.0 or count <= 0:
            return np.zeros(max(count, 0), dtype=bool)
        mask = self.rng.random(count) < self.plan.connection_break_prob
        self.stats.connections_broken += int(mask.sum())
        return mask

    def handshake_mask(self, count: int) -> np.ndarray:
        """Vectorized :meth:`fail_handshake` for ``count`` handshakes."""
        if self.plan.handshake_failure_prob <= 0.0 or count <= 0:
            return np.zeros(max(count, 0), dtype=bool)
        mask = self.rng.random(count) < self.plan.handshake_failure_prob
        self.stats.handshakes_failed += int(mask.sum())
        return mask

    # ------------------------------------------------------------------
    # Shake faults
    # ------------------------------------------------------------------
    def fail_shake(self) -> bool:
        """Should this peer-set shake's re-announce be blocked?"""
        if self.plan.shake_failure_prob <= 0.0:
            return False
        if self.rng.random() < self.plan.shake_failure_prob:
            self.stats.shakes_failed += 1
            return True
        return False

    def shake_mask(self, count: int) -> np.ndarray:
        """Vectorized :meth:`fail_shake` for ``count`` shakes."""
        if self.plan.shake_failure_prob <= 0.0 or count <= 0:
            return np.zeros(max(count, 0), dtype=bool)
        mask = self.rng.random(count) < self.plan.shake_failure_prob
        self.stats.shakes_failed += int(mask.sum())
        return mask

    # ------------------------------------------------------------------
    # Tracker outages
    # ------------------------------------------------------------------
    def announce_outage(self) -> Optional[OutageWindow]:
        """The outage window covering the current time, if any."""
        return self.plan.outage_at(self.now)

    def record_empty_announce(self) -> None:
        self.stats.announces_empty += 1

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable injector state (plan, RNG position, counters).

        Together with the plan itself this is everything a resumed swarm
        needs to keep drawing the *same* fault stream the uninterrupted
        run would have drawn — including the stale-announce snapshots
        taken inside any currently open outage window.
        """
        return {
            "plan": self.plan.to_dict(),
            "rng": self.rng.bit_generator.state,
            "now": self.now,
            "stats": self.stats.to_dict(),
            "stale_snapshots": [
                [[start, end, mode], list(ids)]
                for (start, end, mode), ids in self._stale_snapshots.items()
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore the counterpart of :meth:`snapshot_state`.

        The plan is assumed to match (the caller reconstructs the
        injector from the snapshot's embedded plan before calling).
        """
        self.rng.bit_generator.state = state["rng"]
        self.now = float(state["now"])
        stats = state["stats"]
        self.stats = FaultStats(
            peers_churned=int(stats["peers_churned"]),
            connections_broken=int(stats["connections_broken"]),
            handshakes_failed=int(stats["handshakes_failed"]),
            shakes_failed=int(stats["shakes_failed"]),
            announces_empty=int(stats["announces_empty"]),
            announces_stale=int(stats["announces_stale"]),
        )
        self._stale_snapshots = {
            (float(key[0]), float(key[1]), str(key[2])): [
                int(pid) for pid in ids
            ]
            for key, ids in state["stale_snapshots"]
        }

    def stale_peer_ids(
        self, window: OutageWindow, live_ids: Iterable[int]
    ) -> List[int]:
        """Peer ids served during a stale outage window.

        The first announce inside ``window`` snapshots the live
        registry; every later announce in the same window is answered
        from that snapshot, so peers that departed during the outage
        are still handed out (and waste the refill).
        """
        key = (window.start, window.end, window.mode)
        if key not in self._stale_snapshots:
            self._stale_snapshots[key] = list(live_ids)
        self.stats.announces_stale += 1
        return self._stale_snapshots[key]
