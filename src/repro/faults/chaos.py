"""The chaos experiment: efficiency degradation under escalating faults.

Sweeps a :class:`~repro.faults.plan.FaultPlan` through a range of
intensities (``plan.scaled(intensity)`` per point) and measures, per
point:

* the simulated efficiency ``eta`` (time-averaged slot occupancy);
* the balance-equation ``eta`` evaluated at the *measured* re-encounter
  probability ``p_r`` — the model's prediction once it is told how much
  the faults actually degraded connection survival;
* the measured ``p_r`` / ``p_n`` (driven below their nominal values by
  the injected break and handshake-timeout probabilities);
* the download-phase composition of instrumented peers — the mean
  fraction of the download spent in the bootstrap and last phases, whose
  growth under faults is the phase-boundary shift of the multiphase
  analysis;
* the count of fault events actually fired.

Every point is an independent executor task, so the sweep exercises the
crash-recovery path end to end: the executor retries failed points on
re-derived attempt seeds and, under ``on_error="partial"``, completes
the sweep with NaN at abandoned points and exact failure accounting in
the telemetry.  Exposed on the CLI as ``repro-bt chaos``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.errors import ParameterError
from repro.experiments.result import to_jsonable
from repro.faults.plan import FaultPlan, OutageWindow
from repro.runtime.executor import ExperimentExecutor, TaskSpec
from repro.runtime.seeding import derive_seed
from repro.runtime.telemetry import Telemetry
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm
from repro.traces.analysis import phase_segments
from repro.traces.collector import trace_from_peer

__all__ = [
    "ChaosResult",
    "chaos_point_task",
    "default_chaos_plan",
    "default_chaos_config",
    "run_chaos_sweep",
]

#: Seed-path component separating chaos points from other experiments.
_CHAOS_STREAM = 0xC4_05


def default_chaos_plan() -> FaultPlan:
    """A moderate all-fault-kinds plan for ``intensity = 1``.

    Rates are deliberately mid-scale so the sweep's ``scaled()`` range
    0..2 spans "barely perturbed" to "heavily degraded" without
    saturating any probability.
    """
    return FaultPlan(
        churn_hazard=0.01,
        connection_break_prob=0.05,
        handshake_failure_prob=0.15,
        shake_failure_prob=0.25,
        outages=(OutageWindow(30.0, 45.0, "empty"),
                 OutageWindow(60.0, 75.0, "stale")),
    )


def default_chaos_config() -> SimConfig:
    """The dense steady swarm the sweep perturbs (fig. 3/4(a) style)."""
    return SimConfig(
        num_pieces=40,
        max_conns=3,
        ns_size=20,
        arrival_process="poisson",
        arrival_rate=3.0,
        initial_leechers=50,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        connection_setup_prob=0.8,
        connection_failure_prob=0.1,
        matching="blind",
        piece_selection="rarest",
        shake_threshold=0.9,
        max_time=100.0,
        seed=0,
    )


def chaos_point_task(
    seed: int,
    intensity: float,
    plan: FaultPlan,
    config: SimConfig,
    instrument: int = 4,
    backend: str = "object",
) -> dict:
    """Run one faulted swarm and measure its degradation.

    Module-level (picklable) so it fans out over worker processes; the
    seed sits at position 0, letting the executor re-derive it on
    retries (``TaskSpec(seed_index=0)``).

    The soa backend has no per-peer instrumentation, so under
    ``backend="soa"`` the task runs uninstrumented and the phase
    fractions come back NaN; everything else (eta, ``p_r``/``p_n``,
    fault counts) is measured the same way.
    """
    if backend == "soa":
        instrument = 0
    metrics = MetricsCollector(
        config.max_conns, entropy_every=1_000_000, occupancy_warmup=0.25
    )
    swarm = Swarm(
        config.with_changes(seed=seed),
        metrics=metrics,
        instrument_first=instrument,
        faults=plan.scaled(intensity),
        backend=backend,
    )
    result = swarm.run()

    bootstrap_fracs = []
    last_fracs = []
    for peer in result.instrumented:
        trace = trace_from_peer(
            peer,
            swarm_id=f"chaos-{intensity:g}",
            num_pieces=config.num_pieces,
            piece_size_bytes=config.piece_size_bytes,
        )
        if len(trace.samples) < 2:
            continue
        segments = phase_segments(trace)
        if segments.total > 0:
            bootstrap_fracs.append(segments.bootstrap / segments.total)
            last_fracs.append(segments.last / segments.total)

    stats = result.connection_stats
    fault_stats = result.fault_stats
    return {
        "eta": metrics.efficiency(),
        "p_reenc": stats.p_reenc(),
        "p_new": stats.p_new(),
        "bootstrap_frac": (
            float(np.mean(bootstrap_fracs)) if bootstrap_fracs else float("nan")
        ),
        "last_frac": float(np.mean(last_fracs)) if last_fracs else float("nan"),
        "fault_events": fault_stats.total() if fault_stats else 0,
        "fault_breakdown": fault_stats.to_dict() if fault_stats else {},
        "events": result.events_processed,
    }


@dataclass
class ChaosResult:
    """Series of the chaos sweep (one entry per intensity).

    Attributes:
        intensities: the swept fault intensities.
        sim_eta: measured efficiency per intensity (NaN where every
            replication was abandoned).
        model_eta: balance-equation efficiency at the *measured* ``p_r``
            per intensity — how well the model tracks the faulted swarm
            once fed the observed survival probability.
        p_reenc / p_new: measured connection parameters per intensity.
        bootstrap_frac / last_frac: mean fraction of an instrumented
            download spent in the bootstrap / last phase — the
            phase-boundary shift.
        fault_events: injected fault events fired per intensity.
        points_failed: replication tasks abandoned by the executor
            (> 0 only when crash recovery ran out of attempts).
        plan: the intensity-1 plan that was scaled.
        replications: replications averaged per intensity.
        timing: execution telemetry (includes failure accounting).
    """

    intensities: np.ndarray
    sim_eta: np.ndarray
    model_eta: np.ndarray
    p_reenc: np.ndarray
    p_new: np.ndarray
    bootstrap_frac: np.ndarray
    last_frac: np.ndarray
    fault_events: np.ndarray
    points_failed: int
    plan: FaultPlan
    replications: int
    timing: Optional[Telemetry] = field(default=None, compare=False)

    def format(self) -> str:
        rows = [
            [float(i), float(s), float(m), float(pr), float(pn),
             float(b), float(l), int(f)]
            for i, s, m, pr, pn, b, l, f in zip(
                self.intensities, self.sim_eta, self.model_eta,
                self.p_reenc, self.p_new, self.bootstrap_frac,
                self.last_frac, self.fault_events,
            )
        ]
        text = (
            "Chaos sweep: efficiency and phase shifts vs fault intensity\n"
            + format_table(
                ["intensity", "sim eta", "model eta", "p_r", "p_n",
                 "bootstrap", "last", "faults"],
                rows,
            )
        )
        if self.points_failed:
            text += (
                f"\n{self.points_failed} replication(s) abandoned after "
                f"retries; means use the surviving replications."
            )
        return text

    def to_dict(self) -> dict:
        return {
            "experiment": "chaos",
            "intensities": to_jsonable(self.intensities),
            "sim_eta": to_jsonable(self.sim_eta),
            "model_eta": to_jsonable(self.model_eta),
            "p_reenc": to_jsonable(self.p_reenc),
            "p_new": to_jsonable(self.p_new),
            "bootstrap_frac": to_jsonable(self.bootstrap_frac),
            "last_frac": to_jsonable(self.last_frac),
            "fault_events": to_jsonable(self.fault_events),
            "points_failed": self.points_failed,
            "plan": self.plan.to_dict(),
            "replications": self.replications,
            "timing": self.timing.to_dict() if self.timing else None,
        }


def _nanmean(values: Sequence[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return float(np.mean(finite)) if finite else float("nan")


def run_chaos_sweep(
    intensities: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    *,
    plan: Optional[FaultPlan] = None,
    config: Optional[SimConfig] = None,
    replications: int = 2,
    instrument: int = 4,
    seed: int = 0,
    workers: int = 1,
    backend: str = "object",
    max_attempts: int = 2,
    on_error: str = "partial",
) -> ChaosResult:
    """Sweep fault intensity and report measured-vs-model degradation.

    Args:
        intensities: multipliers applied to ``plan`` (0 = fault-free
            control, 1 = the plan as given).
        plan: intensity-1 fault plan (default :func:`default_chaos_plan`).
        config: swarm configuration (default :func:`default_chaos_config`).
        replications: independent swarms averaged per intensity.
        instrument: peers instrumented per swarm for phase segmentation.
        seed: root seed; every replication derives its own stream.
        workers: executor process-pool size.
        backend: swarm backend (``"object"`` or ``"soa"``); soa runs
            uninstrumented, so the phase-fraction columns come back NaN.
        max_attempts / on_error: crash-recovery policy, forwarded to the
            :class:`~repro.runtime.executor.ExperimentExecutor` — the
            default (2 attempts, partial) lets the sweep complete even
            when individual replications crash.
    """
    if not intensities:
        raise ParameterError("intensities must be non-empty")
    if replications < 1:
        raise ParameterError(f"replications must be >= 1, got {replications}")
    plan = plan if plan is not None else default_chaos_plan()
    config = config if config is not None else default_chaos_config()

    executor = ExperimentExecutor(
        workers=workers, max_attempts=max_attempts, on_error=on_error
    )
    executor.telemetry.backend = backend
    tasks = [
        TaskSpec(
            chaos_point_task,
            (derive_seed(seed, _CHAOS_STREAM, idx, rep),
             float(intensity), plan, config),
            {"instrument": instrument, "backend": backend},
            seed_index=0,
        )
        for idx, intensity in enumerate(intensities)
        for rep in range(replications)
    ]
    outcomes = executor.run(tasks)

    from repro.runtime.cache import shared_cache

    cache = shared_cache()
    sim_eta, model_eta, p_reenc, p_new = [], [], [], []
    bootstrap_frac, last_frac, fault_events = [], [], []
    points_failed = 0
    for idx in range(len(intensities)):
        chunk = outcomes[idx * replications:(idx + 1) * replications]
        good = [o for o in chunk if o is not None]
        points_failed += len(chunk) - len(good)
        for outcome in good:
            executor.record_events(outcome["events"])
        sim_eta.append(_nanmean([o["eta"] for o in good]))
        pr = _nanmean([o["p_reenc"] for o in good])
        p_reenc.append(pr)
        p_new.append(_nanmean([o["p_new"] for o in good]))
        bootstrap_frac.append(_nanmean([o["bootstrap_frac"] for o in good]))
        last_frac.append(_nanmean([o["last_frac"] for o in good]))
        fault_events.append(sum(o["fault_events"] for o in good))
        if math.isnan(pr):
            model_eta.append(float("nan"))
        else:
            with executor.tracked():
                model_eta.append(cache.efficiency_point(config.max_conns, pr).eta)

    return ChaosResult(
        intensities=np.asarray([float(i) for i in intensities]),
        sim_eta=np.asarray(sim_eta),
        model_eta=np.asarray(model_eta),
        p_reenc=np.asarray(p_reenc),
        p_new=np.asarray(p_new),
        bootstrap_frac=np.asarray(bootstrap_frac),
        last_frac=np.asarray(last_frac),
        fault_events=np.asarray(fault_events, dtype=np.int64),
        points_failed=points_failed,
        plan=plan,
        replications=replications,
        timing=executor.telemetry,
    )
