"""Declarative fault schedules for the swarm simulator.

A :class:`FaultPlan` is a frozen, picklable description of *what* goes
wrong during a run — peer churn, connection failures, handshake
timeouts, tracker outages — without saying anything about *how* the
failures are drawn.  The drawing happens in
:class:`~repro.faults.injector.FaultInjector`, which owns its own
seed-derived RNG stream so that attaching a plan never perturbs the
swarm's random stream: a zero-intensity plan is bit-identical to no
plan at all.

The plan's knobs map onto the paper's failure parameters:

* ``connection_break_prob`` lowers the effective re-encounter success
  ``p_r`` (an established connection fails exogenously);
* ``handshake_failure_prob`` lowers the effective new-connection
  success ``p_n`` (a slot-filling handshake times out);
* ``churn_hazard`` is a departure rate on top of the config's
  ``abort_rate`` — the disruption that drives the ``alpha``/``gamma``
  escape waits up (fewer neighbors to escape through);
* ``shake_failure_prob`` makes the Section-7.1 shake re-announce fail
  (the peer is left with an empty peer set until the next refill);
* ``outages`` are tracker announce windows that return empty or stale
  peer sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

from repro.errors import ParameterError

__all__ = ["OutageWindow", "FaultPlan", "FaultStats"]

_OUTAGE_MODES = ("empty", "stale")


@dataclass(frozen=True)
class OutageWindow:
    """A tracker outage: announces inside ``[start, end)`` degrade.

    Attributes:
        start / end: simulation-time bounds of the outage.
        mode: ``"empty"`` — announces return no peers at all;
            ``"stale"`` — announces are served from a snapshot of the
            swarm taken when the window opened, so departed peers are
            handed out and waste the refill.
    """

    start: float
    end: float
    mode: str = "empty"

    def __post_init__(self) -> None:
        if not math.isfinite(self.start) or not math.isfinite(self.end):
            raise ParameterError(
                f"outage bounds must be finite, got [{self.start}, {self.end})"
            )
        if self.end <= self.start:
            raise ParameterError(
                f"outage end {self.end} must be after start {self.start}"
            )
        if self.mode not in _OUTAGE_MODES:
            raise ParameterError(
                f"outage mode must be one of {_OUTAGE_MODES}, got {self.mode!r}"
            )

    def covers(self, time: float) -> bool:
        """True when ``time`` falls inside the window."""
        return self.start <= time < self.end


@dataclass(frozen=True)
class FaultPlan:
    """Validated, immutable fault schedule (see module docstring).

    Attributes:
        churn_hazard: per-round probability that a leecher is churned
            (aborts mid-download and departs with its pieces).
        connection_break_prob: extra per-round probability that an
            established connection fails, composed with the config's
            ``connection_failure_prob`` as independent failure sources —
            the injected ``1 - p_r`` component.
        handshake_failure_prob: probability that a slot-filling
            handshake which would otherwise succeed times out — the
            injected ``1 - p_n`` component.
        shake_failure_prob: probability that the re-announce of a
            peer-set shake fails, leaving the shaken peer isolated
            until the next announce-interval refill.
        outages: tracker outage windows (may overlap; the earliest
            covering window wins).
        salt: extra path component mixed into the injector's derived
            seed, so two plans attached to the same swarm seed draw
            independent fault streams.
    """

    churn_hazard: float = 0.0
    connection_break_prob: float = 0.0
    handshake_failure_prob: float = 0.0
    shake_failure_prob: float = 0.0
    outages: Tuple[OutageWindow, ...] = ()
    salt: int = 0

    def __post_init__(self) -> None:
        for name in (
            "churn_hazard",
            "connection_break_prob",
            "handshake_failure_prob",
            "shake_failure_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ParameterError(f"{name} must be in [0, 1], got {value}")
        object.__setattr__(self, "outages", tuple(self.outages))
        for window in self.outages:
            if not isinstance(window, OutageWindow):
                raise ParameterError(
                    f"outages must be OutageWindow instances, got {window!r}"
                )

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing (identical to no plan)."""
        return (
            self.churn_hazard == 0.0
            and self.connection_break_prob == 0.0
            and self.handshake_failure_prob == 0.0
            and self.shake_failure_prob == 0.0
            and not self.outages
        )

    def outage_at(self, time: float) -> "OutageWindow | None":
        """The earliest outage window covering ``time``, or None."""
        for window in self.outages:
            if window.covers(time):
                return window
        return None

    def scaled(self, intensity: float) -> "FaultPlan":
        """A copy with every probability multiplied by ``intensity``.

        ``intensity=0`` yields a zero plan (outage windows are dropped);
        ``intensity=1`` returns an equivalent plan.  Probabilities are
        clipped to 1.  This is the knob the chaos sweep turns.
        """
        if intensity < 0:
            raise ParameterError(f"intensity must be >= 0, got {intensity}")
        return replace(
            self,
            churn_hazard=min(self.churn_hazard * intensity, 1.0),
            connection_break_prob=min(
                self.connection_break_prob * intensity, 1.0
            ),
            handshake_failure_prob=min(
                self.handshake_failure_prob * intensity, 1.0
            ),
            shake_failure_prob=min(self.shake_failure_prob * intensity, 1.0),
            outages=self.outages if intensity > 0 else (),
        )

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild (and re-validate) a plan from :meth:`to_dict` output.

        This is the checkpoint-restore path: a snapshot embeds the plan
        that was active so a resumed swarm reattaches an identical
        injector.
        """
        known = {
            "churn_hazard",
            "connection_break_prob",
            "handshake_failure_prob",
            "shake_failure_prob",
            "outages",
            "salt",
        }
        unknown = set(data) - known
        if unknown:
            raise ParameterError(
                f"unknown FaultPlan fields: {sorted(unknown)}"
            )
        payload = dict(data)
        payload["outages"] = tuple(
            OutageWindow(
                start=entry["start"], end=entry["end"], mode=entry["mode"]
            )
            for entry in payload.get("outages", ())
        )
        return cls(**payload)

    def to_dict(self) -> dict:
        """JSON-ready form (chaos results embed the plan they ran)."""
        return {
            "churn_hazard": self.churn_hazard,
            "connection_break_prob": self.connection_break_prob,
            "handshake_failure_prob": self.handshake_failure_prob,
            "shake_failure_prob": self.shake_failure_prob,
            "outages": [
                {"start": w.start, "end": w.end, "mode": w.mode}
                for w in self.outages
            ],
            "salt": self.salt,
        }


@dataclass
class FaultStats:
    """Counters of the faults an injector actually fired during a run.

    Attributes:
        peers_churned: leechers aborted by the churn injector.
        connections_broken: established connections torn down by the
            injected break probability (on top of nominal churn).
        handshakes_failed: slot-filling handshakes vetoed.
        shakes_failed: peer-set shakes whose re-announce was blocked.
        announces_empty: tracker announces answered with no peers.
        announces_stale: tracker announces served from a stale snapshot.
    """

    peers_churned: int = 0
    connections_broken: int = 0
    handshakes_failed: int = 0
    shakes_failed: int = 0
    announces_empty: int = 0
    announces_stale: int = 0

    def total(self) -> int:
        """Total fault events fired."""
        return (
            self.peers_churned
            + self.connections_broken
            + self.handshakes_failed
            + self.shakes_failed
            + self.announces_empty
            + self.announces_stale
        )

    def merge(self, other: "FaultStats") -> "FaultStats":
        """Fold another accumulator into this one (in place)."""
        self.peers_churned += other.peers_churned
        self.connections_broken += other.connections_broken
        self.handshakes_failed += other.handshakes_failed
        self.shakes_failed += other.shakes_failed
        self.announces_empty += other.announces_empty
        self.announces_stale += other.announces_stale
        return self

    def to_dict(self) -> dict:
        return {
            "peers_churned": self.peers_churned,
            "connections_broken": self.connections_broken,
            "handshakes_failed": self.handshakes_failed,
            "shakes_failed": self.shakes_failed,
            "announces_empty": self.announces_empty,
            "announces_stale": self.announces_stale,
            "total": self.total(),
        }
