"""Per-round stage profiling for the swarm simulator.

:class:`RoundProfiler` buckets the wall time of each protocol round by
stage, so "what should we optimise next?" is answered by data instead
of guesswork.  The six buckets mirror the round structure documented in
:mod:`repro.sim.swarm`:

``maintenance``
    lingering-seed departures, aborts, injected churn, and stale-
    connection teardown;
``potential``
    potential-set computation (the ``i`` coordinate);
``matching``
    bilateral slot filling over potential sets;
``exchange``
    tit-for-tat piece swaps;
``seeds``
    seed uploads and optimistic-unchoke donations;
``bookkeeping``
    per-peer stats, completions, shakes, neighbor refills, and metrics.

The profiler is opt-in (``Swarm(..., profile=True)``); when disabled
the swarm pays only a handful of ``is None`` checks per round, which
``benchmarks/bench_perf_simulator.py`` pins as unmeasurable.  Profiles
ride on :class:`~repro.sim.swarm.SwarmResult` and fold into
:class:`~repro.runtime.telemetry.Telemetry` (``repro-bt run --timing``).
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

__all__ = ["RoundProfiler", "STAGES", "SOA_STAGES", "SHARD_COORD_STAGES"]

#: Stage names in round-execution order (object backend).
STAGES = (
    "maintenance",
    "potential",
    "matching",
    "exchange",
    "seeds",
    "bookkeeping",
)

#: Stage names of the vectorized soa backend's round pipeline:
#: ``store`` (departures, aborts, churn, stale-connection teardown),
#: ``interest`` (the whole-swarm packed-bitfield interest matrix),
#: ``selection`` (slot-filling proposals and the rank-filter matching),
#: ``exchange`` (batched tit-for-tat piece transfers), ``seeds`` (seed
#: uploads and optimistic donations), ``bookkeeping`` (completions,
#: shakes, refills, metrics).
SOA_STAGES = (
    "store",
    "interest",
    "selection",
    "exchange",
    "seeds",
    "bookkeeping",
)

#: Stage names of the sharded coordinator's cycle: ``comms`` (fabric
#: writes/reads, step dispatch, and the barrier wait net of the slowest
#: worker's compute time) and ``bookkeeping`` (metrics fold, population
#: log, checkpoint cadence).  Worker-side round stages keep the
#: ``SOA_STAGES`` names, so a merged sharded profile shows both layers.
SHARD_COORD_STAGES = (
    "comms",
    "bookkeeping",
)


class RoundProfiler:
    """Accumulates per-stage wall time across simulator rounds.

    Usage inside the round loop::

        profiler.begin_round()     # marks the stage clock
        ...maintenance work...
        profiler.lap("maintenance")
        ...potential-set work...
        profiler.lap("potential")

    Each :meth:`lap` charges the time since the previous mark to the
    named stage and re-marks, so stages need no explicit "start".
    """

    __slots__ = ("stages", "totals", "rounds", "_mark")

    STAGES = STAGES

    def __init__(self, stages: Tuple[str, ...] = STAGES):
        self.stages = tuple(stages)
        self.totals: Dict[str, float] = {stage: 0.0 for stage in self.stages}
        self.rounds = 0
        self._mark = 0.0

    def begin_round(self) -> None:
        """Count a round and reset the stage clock."""
        self.rounds += 1
        self._mark = time.perf_counter()

    def lap(self, stage: str) -> None:
        """Charge the time since the last mark to ``stage`` and re-mark."""
        now = time.perf_counter()
        self.totals[stage] += now - self._mark
        self._mark = now

    def charge(self, stage: str, seconds: float) -> None:
        """Add externally measured ``seconds`` without touching the mark.

        Used where elapsed wall time is *not* what a stage should pay —
        e.g. the sharded coordinator's barrier wait, which charges only
        the wait net of the slowest worker's compute time.
        """
        self.totals[stage] += seconds

    def mark(self) -> None:
        """Reset the stage clock without charging anything."""
        self._mark = time.perf_counter()

    @property
    def total(self) -> float:
        """Wall seconds across all stages."""
        return sum(self.totals.values())

    def as_dict(self) -> Dict[str, float]:
        """Stage totals in seconds, in round-execution order."""
        return dict(self.totals)

    def merge_into(self, sink: Dict[str, float]) -> None:
        """Accumulate this profile into an external stage dict."""
        for stage, seconds in self.totals.items():
            sink[stage] = sink.get(stage, 0.0) + seconds

    def format(self) -> str:
        """One-line per-stage summary (seconds and share of the total)."""
        total = self.total
        parts = []
        for stage in self.stages:
            seconds = self.totals[stage]
            share = 100.0 * seconds / total if total > 0 else 0.0
            parts.append(f"{stage} {seconds:.3f}s ({share:.0f}%)")
        return (
            f"round profile ({self.rounds} round(s), {total:.3f}s): "
            + ", ".join(parts)
        )
