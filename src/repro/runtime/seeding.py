"""Splittable, numpy-free seed derivation for parallel experiments.

Parallel replications must be *bit-identical* to serial ones, so the
per-task random stream cannot depend on scheduling order or worker
count.  Instead of drawing task seeds from one shared generator, every
task derives its own 64-bit seed from the experiment's root seed and a
stable integer *path* (e.g. ``(sweep_index, replication_index)``) via
SplitMix64 mixing — the same finalizer Java's ``SplittableRandom`` and
numpy's ``SeedSequence`` philosophy build on, implemented here in pure
Python so the derivation is reproducible independently of the numpy
version installed.

The derived seed is then handed to ``numpy.random.default_rng`` (or any
other PRNG) inside the task.  Properties:

* deterministic: ``derive_seed(r, *p)`` is a pure function;
* splittable: extending the path never collides with a sibling's
  stream in practice (SplitMix64 is a bijective avalanche mixer);
* order-free: the seed of task ``(2, 5)`` does not depend on whether
  task ``(1, 4)`` ran before it, or at all.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["derive_seed", "seed_path", "SeedTree"]

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(value: int) -> int:
    """One SplitMix64 output step: advance by the golden gamma and mix."""
    value = (value + _GOLDEN_GAMMA) & _MASK64
    z = value
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_seed(root_seed: int, *path: int) -> int:
    """Derive a 64-bit task seed from ``root_seed`` and an integer path.

    Args:
        root_seed: the experiment's root seed (any Python int; reduced
            modulo 2**64, so negative seeds are accepted).
        *path: stable integer coordinates identifying the task, e.g.
            ``(pss_index, replication)``.  An empty path returns the
            mixed root itself.

    Returns:
        An integer in ``[0, 2**64)`` suitable for
        ``numpy.random.default_rng``.
    """
    state = _splitmix64(root_seed & _MASK64)
    for component in path:
        state = _splitmix64(state ^ _splitmix64(component & _MASK64))
    return state


def seed_path(root_seed: int, count: int, *prefix: int) -> Iterator[int]:
    """Yield ``count`` sibling seeds ``derive_seed(root, *prefix, j)``."""
    for index in range(count):
        yield derive_seed(root_seed, *prefix, index)


class SeedTree:
    """A navigable view over the derivation tree rooted at one seed.

    Example:
        >>> tree = SeedTree(42)
        >>> tree.child(0).child(3).seed == derive_seed(42, 0, 3)
        True
    """

    __slots__ = ("_root", "_path")

    def __init__(self, root_seed: int, _path: tuple = ()):
        self._root = root_seed
        self._path = _path

    @property
    def seed(self) -> int:
        """The derived seed at this node."""
        return derive_seed(self._root, *self._path)

    @property
    def path(self) -> tuple:
        return self._path

    def child(self, index: int) -> "SeedTree":
        """Descend one level; children with distinct indices are independent."""
        return SeedTree(self._root, self._path + (index,))

    def children(self, count: int) -> Iterator["SeedTree"]:
        for index in range(count):
            yield self.child(index)

    def __repr__(self) -> str:
        return f"SeedTree(root={self._root}, path={self._path})"
