"""Lightweight execution telemetry for the experiment runtime.

:class:`Telemetry` accumulates, per experiment run: wall-clock time,
tasks executed, events processed (trajectories sampled or simulator
events, whichever the tasks report), transition-kernel cache hit/miss
counters aggregated across every worker process, and — since the
executor grew crash recovery — per-task failure accounting: failed
attempts, retries, permanently failed tasks, and a structured
:class:`TaskFailure` record per abandoned task.  It is cheap enough to
collect unconditionally; the CLI surfaces it behind
``repro-bt run --timing``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["TaskFailure", "Telemetry"]


@dataclass(frozen=True)
class TaskFailure:
    """Record of one task the executor gave up on.

    Attributes:
        index: the task's position in the submitted batch.
        attempts: how many attempts were made before giving up.
        error: ``"ExcType: message"`` of the final failure.
        fn: name of the task callable.
    """

    index: int
    attempts: int
    error: str
    fn: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "attempts": self.attempts,
            "error": self.error,
            "fn": self.fn,
        }


@dataclass
class Telemetry:
    """Counters for one experiment execution.

    Attributes:
        wall_time: total wall-clock seconds spent inside the executor.
        tasks: tasks executed (replications, sweep points, sim runs).
        workers: worker processes the executor was configured with.
        events: work units the tasks reported — chain trajectories for
            model tasks, processed simulator events for swarm tasks.
        cache_hits / cache_misses: kernel-cache lookups aggregated over
            all workers (hits grow with replications per parameter set).
        sparse_cache_hits / sparse_cache_misses: compiled sparse-operator
            lookups aggregated over all workers (a miss means a worker
            compiled the CSR operator from scratch).
        cache_evictions: kernel-cache entries dropped to respect the
            cache's entry/byte bounds, aggregated over all workers.
        task_failures: task attempts that raised or crashed a worker.
        retries: attempts re-submitted after a failure (on a re-derived
            attempt seed when the task declares one).
        tasks_failed: tasks abandoned after exhausting their attempts
            (> 0 only under ``on_error="partial"``).
        resumes: task attempts that picked up an existing checkpoint
            instead of computing from round zero (crashed/preempted
            work recovered, or a relaunched sweep skipping ahead).
        failure_log: one :class:`TaskFailure` per abandoned task.
        round_profile: per-stage simulator wall seconds accumulated from
            :class:`~repro.runtime.profiler.RoundProfiler` runs (empty
            unless a profiled swarm contributed).
        backend: the swarm backend that produced the simulator work
            (``"object"``, ``"soa"`` or ``"sharded"``; empty when no
            swarm ran).  Merging records from *different* backends
            joins the distinct labels with ``"+"`` (sorted), so a mixed
            sweep reports e.g. ``"object+soa"`` instead of silently
            keeping whichever label arrived first.
        shards: shard worker processes behind the simulator work (0
            when no sharded swarm contributed; merges take the max,
            like ``workers``).
        bytes_broadcast: bytes of global replication counts delivered
            to shard workers over the shared-memory fabric (counted
            once per shard per round; 0 when no sharded swarm ran).
        bytes_migrated: bytes of migration rows carried through the
            fabric, counted on each leg (coordinator inbox write and
            outbox read), so a peer hopping shards costs two legs.
    """

    wall_time: float = 0.0
    tasks: int = 0
    workers: int = 1
    events: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    sparse_cache_hits: int = 0
    sparse_cache_misses: int = 0
    cache_evictions: int = 0
    task_failures: int = 0
    retries: int = 0
    tasks_failed: int = 0
    resumes: int = 0
    failure_log: List[TaskFailure] = field(default_factory=list, repr=False)
    batches: int = field(default=0, repr=False)
    round_profile: Dict[str, float] = field(default_factory=dict)
    backend: str = ""
    shards: int = 0
    bytes_broadcast: int = 0
    bytes_migrated: int = 0

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold another telemetry record into this one (in place)."""
        self.wall_time += other.wall_time
        self.tasks += other.tasks
        self.workers = max(self.workers, other.workers)
        self.events += other.events
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.sparse_cache_hits += other.sparse_cache_hits
        self.sparse_cache_misses += other.sparse_cache_misses
        self.cache_evictions += other.cache_evictions
        self.task_failures += other.task_failures
        self.retries += other.retries
        self.tasks_failed += other.tasks_failed
        self.resumes += other.resumes
        self.failure_log.extend(other.failure_log)
        self.batches += other.batches
        for stage, seconds in other.round_profile.items():
            self.round_profile[stage] = (
                self.round_profile.get(stage, 0.0) + seconds
            )
        if other.backend:
            if self.backend and self.backend != other.backend:
                labels = set(self.backend.split("+"))
                labels.update(other.backend.split("+"))
                self.backend = "+".join(sorted(labels))
            else:
                self.backend = other.backend
        self.shards = max(self.shards, other.shards)
        self.bytes_broadcast += other.bytes_broadcast
        self.bytes_migrated += other.bytes_migrated
        return self

    def add_round_profile(self, profile: Dict[str, float]) -> None:
        """Accumulate one swarm's per-stage round profile."""
        for stage, seconds in profile.items():
            self.round_profile[stage] = (
                self.round_profile.get(stage, 0.0) + seconds
            )

    @property
    def cache_hit_rate(self) -> float:
        """Hit fraction of all kernel-cache lookups (0 when none)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def tasks_per_second(self) -> float:
        return self.tasks / self.wall_time if self.wall_time > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-ready counters."""
        return {
            "wall_time": self.wall_time,
            "tasks": self.tasks,
            "workers": self.workers,
            "events": self.events,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "sparse_cache_hits": self.sparse_cache_hits,
            "sparse_cache_misses": self.sparse_cache_misses,
            "cache_evictions": self.cache_evictions,
            "task_failures": self.task_failures,
            "retries": self.retries,
            "tasks_failed": self.tasks_failed,
            "resumes": self.resumes,
            "failure_log": [failure.to_dict() for failure in self.failure_log],
            "round_profile": dict(self.round_profile),
            "backend": self.backend,
            "shards": self.shards,
            "bytes_broadcast": self.bytes_broadcast,
            "bytes_migrated": self.bytes_migrated,
        }

    def format(self) -> str:
        """Printable summary (the ``--timing`` CLI block)."""
        text = (
            f"timing: {self.wall_time:.3f}s wall, {self.tasks} task(s) on "
            f"{self.workers} worker(s) ({self.tasks_per_second:.1f} tasks/s), "
            f"{self.events} event(s); kernel cache: {self.cache_hits} hit(s) / "
            f"{self.cache_misses} miss(es) ({100.0 * self.cache_hit_rate:.0f}% hit rate)"
        )
        if self.sparse_cache_hits or self.sparse_cache_misses:
            text += (
                f"; sparse operators: {self.sparse_cache_hits} hit(s) / "
                f"{self.sparse_cache_misses} miss(es)"
            )
        if self.cache_evictions:
            text += f"; cache evictions: {self.cache_evictions}"
        if self.task_failures or self.tasks_failed:
            text += (
                f"; faults: {self.task_failures} failed attempt(s), "
                f"{self.retries} retried, {self.tasks_failed} abandoned"
            )
        if self.resumes:
            text += f"; checkpoints: {self.resumes} task(s) resumed"
        if self.backend:
            text += f"; backend: {self.backend}"
        if self.shards:
            text += f"; shards: {self.shards}"
        if self.bytes_broadcast or self.bytes_migrated:
            text += (
                f"; shard comms: "
                f"{self.bytes_broadcast / 1e6:.1f} MB broadcast, "
                f"{self.bytes_migrated / 1e6:.1f} MB migrated"
            )
        if self.round_profile:
            total = sum(self.round_profile.values())
            stages = ", ".join(
                f"{stage} {seconds:.3f}s"
                f" ({100.0 * seconds / total if total > 0 else 0.0:.0f}%)"
                for stage, seconds in self.round_profile.items()
            )
            label = f" [{self.backend}]" if self.backend else ""
            text += f"\nround profile{label} ({total:.3f}s sim): {stages}"
        return text
