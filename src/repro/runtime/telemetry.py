"""Lightweight execution telemetry for the experiment runtime.

:class:`Telemetry` accumulates, per experiment run: wall-clock time,
tasks executed, events processed (trajectories sampled or simulator
events, whichever the tasks report), and transition-kernel cache
hit/miss counters aggregated across every worker process.  It is cheap
enough to collect unconditionally; the CLI surfaces it behind
``repro-bt run --timing``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Telemetry"]


@dataclass
class Telemetry:
    """Counters for one experiment execution.

    Attributes:
        wall_time: total wall-clock seconds spent inside the executor.
        tasks: tasks executed (replications, sweep points, sim runs).
        workers: worker processes the executor was configured with.
        events: work units the tasks reported — chain trajectories for
            model tasks, processed simulator events for swarm tasks.
        cache_hits / cache_misses: kernel-cache lookups aggregated over
            all workers (hits grow with replications per parameter set).
    """

    wall_time: float = 0.0
    tasks: int = 0
    workers: int = 1
    events: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = field(default=0, repr=False)

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold another telemetry record into this one (in place)."""
        self.wall_time += other.wall_time
        self.tasks += other.tasks
        self.workers = max(self.workers, other.workers)
        self.events += other.events
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.batches += other.batches
        return self

    @property
    def cache_hit_rate(self) -> float:
        """Hit fraction of all kernel-cache lookups (0 when none)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def tasks_per_second(self) -> float:
        return self.tasks / self.wall_time if self.wall_time > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-ready counters."""
        return {
            "wall_time": self.wall_time,
            "tasks": self.tasks,
            "workers": self.workers,
            "events": self.events,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
        }

    def format(self) -> str:
        """Printable summary (the ``--timing`` CLI block)."""
        return (
            f"timing: {self.wall_time:.3f}s wall, {self.tasks} task(s) on "
            f"{self.workers} worker(s) ({self.tasks_per_second:.1f} tasks/s), "
            f"{self.events} event(s); kernel cache: {self.cache_hits} hit(s) / "
            f"{self.cache_misses} miss(es) ({100.0 * self.cache_hit_rate:.0f}% hit rate)"
        )
