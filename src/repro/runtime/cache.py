"""Process-wide memoization of transition kernels and efficiency solutions.

Building a :class:`~repro.core.transitions.TransitionKernel` recomputes
the trading-power curve ``p(c)`` (Eq. 1) and re-derives every binomial
table on demand; the balance-equation fixed point of Section 5 is an
iterative solve.  Both depend *only* on their (frozen, hashable)
parameter values, yet the figure runners historically rebuilt them for
every replication and sweep point.  :class:`KernelCache` shares one
instance per parameter set across all replications executed in a
process; each worker of a process pool holds its own cache, and the
executor aggregates their hit/miss counters into the run telemetry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.chain import DownloadChain
    from repro.core.parameters import ModelParameters
    from repro.core.sparse import SparseChainOperator
    from repro.core.transitions import TransitionKernel
    from repro.efficiency.efficiency import EfficiencyPoint

__all__ = ["CacheStats", "KernelCache", "shared_cache", "reset_shared_cache"]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters.

    Attributes:
        hits: lookups served from the cache.
        misses: lookups that had to build the value.
        sparse_hits: compiled sparse-operator lookups served from cache.
        sparse_misses: sparse-operator lookups that had to compile.
        size: entries currently held.
    """

    hits: int = 0
    misses: int = 0
    sparse_hits: int = 0
    sparse_misses: int = 0
    size: int = 0

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier snapshot."""
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            sparse_hits=self.sparse_hits - since.sparse_hits,
            sparse_misses=self.sparse_misses - since.sparse_misses,
            size=self.size,
        )


class KernelCache:
    """LRU-bounded memoizer for chains, kernels, and efficiency points.

    Keys are the frozen parameter values themselves —
    :class:`~repro.core.parameters.ModelParameters` is hashable
    (including its ``phi`` distribution), so two parameter sets that
    compare equal share one kernel.  Changing *any* field produces a
    different key and therefore a rebuild: invalidation is structural,
    not manual.

    Thread-safe; within a worker process one instance is shared by all
    tasks (see :func:`shared_cache`).
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._chains: "OrderedDict" = OrderedDict()
        self._efficiency: "OrderedDict" = OrderedDict()
        self._operators: "OrderedDict" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._sparse_hits = 0
        self._sparse_misses = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def chain(self, params: "ModelParameters") -> "DownloadChain":
        """The (shared) :class:`DownloadChain` for ``params``.

        Chains are safe to share across replications: sampling state
        lives entirely in the caller-supplied RNG.
        """
        from repro.core.chain import DownloadChain

        with self._lock:
            chain = self._chains.get(params)
            if chain is not None:
                self._hits += 1
                self._chains.move_to_end(params)
                return chain
            self._misses += 1
        # Build outside the lock: kernel construction is the slow part.
        chain = DownloadChain(params)
        with self._lock:
            self._chains[params] = chain
            self._evict(self._chains)
        return chain

    def kernel(self, params: "ModelParameters") -> "TransitionKernel":
        """The memoized :class:`TransitionKernel` for ``params``."""
        return self.chain(params).kernel

    def sparse_operator(
        self,
        params: "ModelParameters",
        *,
        drop_tol: "float | None" = None,
        max_states: "int | None" = None,
    ) -> "SparseChainOperator":
        """The compiled CSR one-step operator for ``params``.

        Compilation enumerates the full transient state space and
        multiplies the factored kernel into one CSR matrix — worth
        memoizing at paper scale, where it dominates a single exact
        solve.  Tracked by dedicated ``sparse_hits``/``sparse_misses``
        counters so the ``--timing`` telemetry can report compilations
        separately from the (much cheaper) kernel-table lookups.
        """
        from repro.core.sparse import DEFAULT_DROP_TOL, DEFAULT_MAX_STATES

        key = (
            params,
            DEFAULT_DROP_TOL if drop_tol is None else drop_tol,
            DEFAULT_MAX_STATES if max_states is None else max_states,
        )
        with self._lock:
            operator = self._operators.get(key)
            if operator is not None:
                self._sparse_hits += 1
                self._operators.move_to_end(key)
                return operator
            self._sparse_misses += 1
        # Compile outside the lock; the kernel memoizes too, so a racing
        # thread at worst stores the same object twice.
        operator = self.chain(params).kernel.sparse_operator(
            drop_tol=drop_tol, max_states=max_states
        )
        with self._lock:
            self._operators[key] = operator
            self._evict(self._operators)
        return operator

    def efficiency_point(
        self, max_conns: int, p_reenc: float, *, tol: float = 1e-10
    ) -> "EfficiencyPoint":
        """Memoized stationary efficiency solution for ``(k, p_r)``.

        Solves (once) the Section-5 balance equations plus the
        birth-death cross-check for the given connection cap and
        survival probability.
        """
        key = (max_conns, p_reenc, tol)
        with self._lock:
            point = self._efficiency.get(key)
            if point is not None:
                self._hits += 1
                self._efficiency.move_to_end(key)
                return point
            self._misses += 1
        from repro.efficiency.balance import iterate_balance
        from repro.efficiency.birth_death import birth_death_equilibrium
        from repro.efficiency.efficiency import EfficiencyPoint

        balance = iterate_balance(max_conns, p_reenc, tol=tol)
        cross = birth_death_equilibrium(max_conns, p_reenc)
        point = EfficiencyPoint(
            max_conns=max_conns,
            eta=balance.eta,
            eta_birth_death=cross.eta,
            p_reenc=p_reenc,
            occupancy=balance.x,
        )
        with self._lock:
            self._efficiency[key] = point
            self._evict(self._efficiency)
        return point

    def _evict(self, store: "OrderedDict") -> None:
        while len(store) > self.max_entries:
            store.popitem(last=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss counters and current size."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                sparse_hits=self._sparse_hits,
                sparse_misses=self._sparse_misses,
                size=len(self._chains)
                + len(self._efficiency)
                + len(self._operators),
            )

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._chains.clear()
            self._efficiency.clear()
            self._operators.clear()
            self._hits = 0
            self._misses = 0
            self._sparse_hits = 0
            self._sparse_misses = 0

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._chains)
                + len(self._efficiency)
                + len(self._operators)
            )


_SHARED = KernelCache()


def shared_cache() -> KernelCache:
    """The process-global cache every runtime task consults.

    Worker processes forked by the executor each see their own copy;
    the executor reports per-task counter *deltas* back to the parent,
    so aggregated telemetry is exact regardless of the pool layout.
    """
    return _SHARED


def reset_shared_cache() -> None:
    """Clear the process-global cache (tests and benchmarks)."""
    _SHARED.clear()
