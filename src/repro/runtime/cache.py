"""Process-wide memoization of transition kernels and efficiency solutions.

Building a :class:`~repro.core.transitions.TransitionKernel` recomputes
the trading-power curve ``p(c)`` (Eq. 1) and re-derives every binomial
table on demand; the balance-equation fixed point of Section 5 is an
iterative solve.  Both depend *only* on their (frozen, hashable)
parameter values, yet the figure runners historically rebuilt them for
every replication and sweep point.  :class:`KernelCache` shares one
instance per parameter set across all replications executed in a
process; each worker of a process pool holds its own cache, and the
executor aggregates their hit/miss counters into the run telemetry.

The cache is bounded two ways: by entry count (``max_entries``) and by
estimated resident bytes (``max_bytes``) — compiled sparse operators at
paper scale run to hundreds of megabytes, so a long-lived ``repro-bt
serve`` process needs byte-level accounting, not just a count.  Both
bounds evict least-recently-used entries first, across all entry kinds
in one recency order, and every eviction is counted (surfaced in the
``--timing`` telemetry and the service ``/stats`` endpoint).
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.chain import DownloadChain
    from repro.core.meanfield import MeanFieldSolution, MeanFieldTables
    from repro.core.parameters import ModelParameters
    from repro.core.sparse import SparseChainOperator
    from repro.core.transitions import TransitionKernel
    from repro.efficiency.efficiency import EfficiencyPoint

__all__ = [
    "CacheStats",
    "KernelCache",
    "DEFAULT_MAX_BYTES",
    "shared_cache",
    "reset_shared_cache",
]

#: Default byte budget for one cache (256 MiB) — roomy for dozens of
#: modest operators, small enough that a paper-scale serve process stays
#: well under typical container limits.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters.

    Attributes:
        hits: lookups served from the cache.
        misses: lookups that had to build the value.
        sparse_hits: compiled sparse-operator lookups served from cache.
        sparse_misses: sparse-operator lookups that had to compile.
        size: entries currently held.
        evictions: entries dropped so far to respect the entry/byte
            bounds (cumulative, not reset by eviction itself).
    """

    hits: int = 0
    misses: int = 0
    sparse_hits: int = 0
    sparse_misses: int = 0
    size: int = 0
    evictions: int = 0

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier snapshot."""
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            sparse_hits=self.sparse_hits - since.sparse_hits,
            sparse_misses=self.sparse_misses - since.sparse_misses,
            size=self.size,
            evictions=self.evictions - since.evictions,
        )


def _estimate_bytes(value, _depth: int = 0, _seen=None) -> int:
    """Best-effort resident-size estimate for a cached value.

    Counts numpy array buffers exactly (they dominate: CSR matrices,
    kernel tables) and walks containers and object ``__dict__``s a few
    levels deep; everything else falls back to ``sys.getsizeof``.
    """
    if _seen is None:
        _seen = set()
    if id(value) in _seen:
        return 0
    _seen.add(id(value))
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (int, float, bool, str, bytes, type(None))):
        return sys.getsizeof(value)
    if _depth >= 4:
        return sys.getsizeof(value)
    if isinstance(value, dict):
        return sum(
            _estimate_bytes(k, _depth + 1, _seen)
            + _estimate_bytes(v, _depth + 1, _seen)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(_estimate_bytes(item, _depth + 1, _seen) for item in value)
    total = sys.getsizeof(value)
    attrs = getattr(value, "__dict__", None)
    if attrs:
        total += sum(
            _estimate_bytes(v, _depth + 1, _seen) for v in attrs.values()
        )
    return total


class KernelCache:
    """LRU- and byte-bounded memoizer for chains, kernels, operators,
    and efficiency points.

    Keys are the frozen parameter values themselves —
    :class:`~repro.core.parameters.ModelParameters` is hashable
    (including its ``phi`` distribution), so two parameter sets that
    compare equal share one kernel.  Changing *any* field produces a
    different key and therefore a rebuild: invalidation is structural,
    not manual.

    All entry kinds live in one recency order; when either bound
    (``max_entries`` entries, ``max_bytes`` estimated bytes) is
    exceeded, least-recently-used entries are dropped first.  The entry
    just inserted is never evicted, so a single value larger than
    ``max_bytes`` still caches (and evicts everything else).

    Thread-safe; within a worker process one instance is shared by all
    tasks (see :func:`shared_cache`).
    """

    def __init__(
        self,
        max_entries: int = 128,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        # key -> (value, estimated_bytes); one LRU order for all kinds.
        self._store: "OrderedDict[tuple, Tuple[object, int]]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._sparse_hits = 0
        self._sparse_misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Core store operations
    # ------------------------------------------------------------------
    def _lookup(self, key: tuple, *, sparse: bool):
        """Counted lookup; bumps recency on hit.  Returns None on miss."""
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                if sparse:
                    self._sparse_hits += 1
                else:
                    self._hits += 1
                self._store.move_to_end(key)
                return entry[0]
            if sparse:
                self._sparse_misses += 1
            else:
                self._misses += 1
            return None

    def _insert(self, key: tuple, value) -> None:
        nbytes = _estimate_bytes(value)
        with self._lock:
            if key in self._store:
                # A racing thread built the same value first; keep its
                # entry (the objects are interchangeable) and just bump
                # recency.
                self._store.move_to_end(key)
                return
            self._store[key] = (value, nbytes)
            self._bytes += nbytes
            self._evict_locked()

    def _evict_locked(self) -> None:
        def over_budget() -> bool:
            if len(self._store) > self.max_entries:
                return True
            return self.max_bytes is not None and self._bytes > self.max_bytes

        # The just-inserted entry sits at the MRU end; never evict it.
        while len(self._store) > 1 and over_budget():
            _key, (_value, nbytes) = self._store.popitem(last=False)
            self._bytes -= nbytes
            self._evictions += 1

    @staticmethod
    def _operator_key(
        params: "ModelParameters",
        drop_tol: "float | None",
        max_states: "int | None",
    ) -> tuple:
        from repro.core.sparse import DEFAULT_DROP_TOL, DEFAULT_MAX_STATES

        return (
            "operator",
            params,
            DEFAULT_DROP_TOL if drop_tol is None else drop_tol,
            DEFAULT_MAX_STATES if max_states is None else max_states,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def chain(self, params: "ModelParameters") -> "DownloadChain":
        """The (shared) :class:`DownloadChain` for ``params``.

        Chains are safe to share across replications: sampling state
        lives entirely in the caller-supplied RNG.
        """
        from repro.core.chain import DownloadChain

        key = ("chain", params)
        chain = self._lookup(key, sparse=False)
        if chain is not None:
            return chain
        # Build outside the lock: kernel construction is the slow part.
        chain = DownloadChain(params)
        self._insert(key, chain)
        return chain

    def kernel(self, params: "ModelParameters") -> "TransitionKernel":
        """The memoized :class:`TransitionKernel` for ``params``."""
        return self.chain(params).kernel

    def sparse_operator(
        self,
        params: "ModelParameters",
        *,
        drop_tol: "float | None" = None,
        max_states: "int | None" = None,
    ) -> "SparseChainOperator":
        """The compiled CSR one-step operator for ``params``.

        Compilation enumerates the full transient state space and
        multiplies the factored kernel into one CSR matrix — worth
        memoizing at paper scale, where it dominates a single exact
        solve.  Tracked by dedicated ``sparse_hits``/``sparse_misses``
        counters so the ``--timing`` telemetry can report compilations
        separately from the (much cheaper) kernel-table lookups.
        """
        key = self._operator_key(params, drop_tol, max_states)
        operator = self._lookup(key, sparse=True)
        if operator is not None:
            return operator
        # Compile outside the lock; the kernel memoizes too, so a racing
        # thread at worst builds the same object twice and keeps one.
        operator = self.chain(params).kernel.sparse_operator(
            drop_tol=drop_tol, max_states=max_states
        )
        self._insert(key, operator)
        return operator

    def meanfield_tables(self, params: "ModelParameters") -> "MeanFieldTables":
        """Memoized mean-field kernel tables for ``params``.

        Shares the kernel's trading-power curve (Eq. 1 is O(B^3) and
        dominates a cold mean-field solve at paper scale), so a warm
        chain makes the table build nearly free.
        """
        key = ("meanfield_tables", params)
        tables = self._lookup(key, sparse=False)
        if tables is not None:
            return tables
        from repro.core.meanfield import build_tables

        # Build outside the lock; the kernel supplies the p-curve.
        tables = build_tables(params, p_curve=self.kernel(params).p_curve)
        self._insert(key, tables)
        return tables

    def meanfield_solution(
        self,
        params: "ModelParameters",
        *,
        rtol: "float | None" = None,
        atol: "float | None" = None,
        drain_tol: "float | None" = None,
        max_rounds: "float | None" = None,
    ) -> "MeanFieldSolution":
        """Memoized mean-field ODE solution for ``params``.

        One solve answers every quantity (timeline, download time,
        phases, potential ratio), so the four ``solve()`` dispatch
        cells share a single cached integration per parameter set and
        tolerance choice.
        """
        from repro.core.meanfield import (
            DEFAULT_ATOL,
            DEFAULT_DRAIN_TOL,
            DEFAULT_RTOL,
            solve_mean_field,
        )

        key = (
            "meanfield",
            params,
            DEFAULT_RTOL if rtol is None else rtol,
            DEFAULT_ATOL if atol is None else atol,
            DEFAULT_DRAIN_TOL if drain_tol is None else drain_tol,
            max_rounds,
        )
        solution = self._lookup(key, sparse=False)
        if solution is not None:
            return solution
        solution = solve_mean_field(
            params,
            rtol=key[2],
            atol=key[3],
            drain_tol=key[4],
            max_rounds=max_rounds,
            tables=self.meanfield_tables(params),
        )
        self._insert(key, solution)
        return solution

    def efficiency_point(
        self, max_conns: int, p_reenc: float, *, tol: float = 1e-10
    ) -> "EfficiencyPoint":
        """Memoized stationary efficiency solution for ``(k, p_r)``.

        Solves (once) the Section-5 balance equations plus the
        birth-death cross-check for the given connection cap and
        survival probability.
        """
        key = ("efficiency", max_conns, p_reenc, tol)
        point = self._lookup(key, sparse=False)
        if point is not None:
            return point
        from repro.efficiency.balance import iterate_balance
        from repro.efficiency.birth_death import birth_death_equilibrium
        from repro.efficiency.efficiency import EfficiencyPoint

        balance = iterate_balance(max_conns, p_reenc, tol=tol)
        cross = birth_death_equilibrium(max_conns, p_reenc)
        point = EfficiencyPoint(
            max_conns=max_conns,
            eta=balance.eta,
            eta_birth_death=cross.eta,
            p_reenc=p_reenc,
            occupancy=balance.x,
        )
        self._insert(key, point)
        return point

    # ------------------------------------------------------------------
    # Non-counting probes (service hit/miss classification)
    # ------------------------------------------------------------------
    def has_chain(self, params: "ModelParameters") -> bool:
        """Whether the chain for ``params`` is resident (no counters)."""
        with self._lock:
            return ("chain", params) in self._store

    def has_operator(
        self,
        params: "ModelParameters",
        *,
        drop_tol: "float | None" = None,
        max_states: "int | None" = None,
    ) -> bool:
        """Whether the compiled operator is resident (no counters)."""
        key = self._operator_key(params, drop_tol, max_states)
        with self._lock:
            return key in self._store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters and current size."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                sparse_hits=self._sparse_hits,
                sparse_misses=self._sparse_misses,
                size=len(self._store),
                evictions=self._evictions,
            )

    def current_bytes(self) -> int:
        """Estimated resident bytes across all cached values."""
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._store.clear()
            self._bytes = 0
            self._hits = 0
            self._misses = 0
            self._sparse_hits = 0
            self._sparse_misses = 0
            self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)


_SHARED = KernelCache()


def shared_cache() -> KernelCache:
    """The process-global cache every runtime task consults.

    Worker processes forked by the executor each see their own copy;
    the executor reports per-task counter *deltas* back to the parent,
    so aggregated telemetry is exact regardless of the pool layout.
    """
    return _SHARED


def reset_shared_cache() -> None:
    """Clear the process-global cache (tests and benchmarks)."""
    _SHARED.clear()
