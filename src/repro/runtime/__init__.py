"""Parallel experiment runtime: executor, kernel cache, telemetry, seeding.

The figure runners, the stability and seeding studies, and the bench
harness all execute their replications and sweep points through this
subsystem:

``repro.runtime.executor``
    :class:`ExperimentExecutor` — fans :class:`TaskSpec` work units over
    a ``concurrent.futures`` process pool, with a deterministic
    in-process fallback for ``workers=1``.  Parallel and serial runs
    are bit-identical (per-task derived seeds, task-order collection).

``repro.runtime.cache``
    :class:`KernelCache` — memoizes transition kernels and stationary
    efficiency solutions keyed on frozen parameter values, shared by
    every replication in a process.

``repro.runtime.telemetry``
    :class:`Telemetry` — wall time, task/event counts, and aggregated
    cache hit/miss counters, surfaced as ``result.timing`` and via
    ``repro-bt run --timing``.

``repro.runtime.seeding``
    :func:`derive_seed` / :class:`SeedTree` — numpy-free splittable
    seed derivation, the mechanism behind the determinism guarantee.
"""

from repro.runtime.cache import (
    CacheStats,
    KernelCache,
    reset_shared_cache,
    shared_cache,
)
from repro.runtime.executor import ExperimentExecutor, TaskSpec
from repro.runtime.seeding import SeedTree, derive_seed, seed_path
from repro.runtime.tasks import first_passage_task, potential_ratio_task
from repro.runtime.telemetry import TaskFailure, Telemetry

__all__ = [
    "CacheStats",
    "KernelCache",
    "shared_cache",
    "reset_shared_cache",
    "ExperimentExecutor",
    "TaskSpec",
    "SeedTree",
    "derive_seed",
    "seed_path",
    "first_passage_task",
    "potential_ratio_task",
    "TaskFailure",
    "Telemetry",
]
