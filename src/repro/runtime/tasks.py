"""Module-level task functions the figure runners fan out.

These are the per-replication work units of the Figure-1 estimators,
reshaped so each replication is an independent, seedable, picklable
task (the loop bodies previously hidden inside
:func:`repro.core.timeline.mean_timeline` and
:func:`repro.core.timeline.potential_ratio_by_pieces`, which drew all
replications from one shared stream and therefore could not be
parallelised deterministically).  Every task resolves its chain through
the process-wide :func:`~repro.runtime.cache.shared_cache`, so all
replications of one parameter set share a single transition kernel.

Each task returns ``(payload..., steps)`` where ``steps`` is the
trajectory length — the executor credits it to the telemetry's event
counter.
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import ModelParameters
from repro.runtime.cache import shared_cache

__all__ = [
    "potential_ratio_task",
    "first_passage_task",
    "batch_potential_ratio_task",
    "batch_first_passage_task",
    "exact_potential_ratio_task",
    "exact_first_passage_task",
    "meanfield_potential_ratio_task",
    "meanfield_first_passage_task",
]


def potential_ratio_task(params: ModelParameters, seed: int) -> tuple:
    """One Figure-1(a) replication: pooled ``i / s`` samples per ``b``.

    Returns:
        ``(sums, counts, steps)`` — per-piece-count accumulators over
        one trajectory, merged across replications by the runner.
    """
    chain = shared_cache().chain(params)
    rng = np.random.default_rng(seed)
    sums = np.zeros(params.num_pieces + 1)
    counts = np.zeros(params.num_pieces + 1)
    trajectory = chain.trajectory(rng=rng)
    s = params.ns_size
    for state in trajectory:
        sums[state.b] += state.i / s
        counts[state.b] += 1
    return sums, counts, len(trajectory) - 1


def batch_potential_ratio_task(
    params: ModelParameters, seed: int, runs: int
) -> tuple:
    """All Figure-1(a) replications of one parameter set, vectorized.

    Steps every trajectory simultaneously on the
    :class:`~repro.core.batch.BatchChainSampler`; statistically
    equivalent to ``runs`` :func:`potential_ratio_task` calls (pooled
    draws, different stream order).

    Returns:
        ``(sums, counts, steps)`` — pooled ``i / s`` accumulators per
        piece count, plus the total chain steps sampled.
    """
    chain = shared_cache().chain(params)
    batch = chain.batch_sampler().sample(runs, seed=seed)
    sums, counts = batch.potential_accumulators()
    return sums, counts, batch.total_steps


def first_passage_task(params: ModelParameters, seed: int) -> tuple:
    """One Figure-1(b) replication: first-passage round per piece count.

    Piece counts can advance by more than one per round, so "first
    passage to ``b``" is the first round holding *at least* ``b``
    pieces (matching :func:`repro.core.timeline.mean_timeline`).

    Returns:
        ``(first, steps)`` — ``first[b]`` is the first-passage round.
    """
    chain = shared_cache().chain(params)
    rng = np.random.default_rng(seed)
    trajectory = chain.trajectory(rng=rng)
    first = np.full(params.num_pieces + 1, -1.0)
    for step, state in enumerate(trajectory):
        lower = 0 if step == 0 else trajectory[step - 1].b + 1
        for reached in range(lower, state.b + 1):
            if first[reached] < 0:
                first[reached] = step
    return first, len(trajectory) - 1


def batch_first_passage_task(
    params: ModelParameters, seed: int, runs: int
) -> tuple:
    """All Figure-1(b) replications of one parameter set, vectorized.

    One task steps every trajectory simultaneously on the
    :class:`~repro.core.batch.BatchChainSampler` — the fan-out unit
    becomes the parameter set instead of the single trajectory.  The
    estimates are statistically equivalent to ``runs`` independent
    :func:`first_passage_task` calls, but not bit-identical (pooled
    draws consume the stream in a different order).

    Returns:
        ``(hits, steps)`` — ``hits[r, b]`` is run ``r``'s first-passage
        round to ``b`` pieces; ``steps`` is the total chain steps
        sampled (the telemetry event count).
    """
    chain = shared_cache().chain(params)
    batch = chain.batch_sampler().sample(runs, seed=seed)
    return batch.first_passage(), batch.total_steps


def exact_potential_ratio_task(params: ModelParameters) -> tuple:
    """Exact Figure-1(a) curve of one parameter set — no sampling.

    Compiles (or reuses) the CSR operator through the shared cache and
    reads ``E[i/s | b]`` off the fundamental-matrix expected-visits
    solve.  Deterministic, so there is no seed and no replication fan:
    one task per parameter set.

    Returns:
        ``(ratio, states)`` — the exact per-piece-count curve, plus the
        number of transient states solved (the telemetry event count).
    """
    from repro.core.exact import _exact_potential_ratio_impl

    chain = shared_cache().chain(params)
    operator = shared_cache().sparse_operator(params)
    result = _exact_potential_ratio_impl(chain, method="sparse")
    return result.ratio, operator.num_states


def meanfield_potential_ratio_task(params: ModelParameters) -> tuple:
    """Mean-field Figure-1(a) curve of one parameter set — no sampling.

    Solves (or reuses) the large-swarm ODE limit through the shared
    cache and reads the survivor-average ``E[i/s]`` at each piece-level
    crossing.  Deterministic: one task per parameter set.

    Returns:
        ``(ratio, evals)`` — the mean-field per-piece-count curve, plus
        the number of right-hand-side evaluations the integrator spent
        (the telemetry event count).
    """
    solution = shared_cache().meanfield_solution(params)
    return solution.potential_ratio, int(solution.stats["nfev"])


def meanfield_first_passage_task(params: ModelParameters) -> tuple:
    """Mean-field Figure-1(b) timeline of one parameter set.

    ``timeline[b]`` is the deterministic-limit expected first round
    holding at least ``b`` pieces, from the same cached ODE solve as
    the mean download time.

    Returns:
        ``(timeline, evals)`` — mean-field first-passage rounds, plus
        the integrator's right-hand-side evaluation count.
    """
    solution = shared_cache().meanfield_solution(params)
    return solution.timeline, int(solution.stats["nfev"])


def exact_first_passage_task(params: ModelParameters) -> tuple:
    """Exact Figure-1(b) timeline of one parameter set — no sampling.

    ``timeline[b]`` is the exact expected first round holding at least
    ``b`` pieces (expected rounds spent strictly below ``b``), from the
    same fundamental-matrix solve as the mean download time.

    Returns:
        ``(timeline, states)`` — exact expected first-passage rounds,
        plus the number of transient states solved.
    """
    operator = shared_cache().sparse_operator(params)
    solution = operator.solution()
    return solution.timeline, operator.num_states
