"""The parallel experiment executor.

:class:`ExperimentExecutor` fans independent tasks — model
replications, simulator runs, sweep points — out over a
``concurrent.futures`` process pool, and collapses to a deterministic
in-process loop for ``workers=1``.  Three invariants make parallel and
serial runs bit-identical:

1. every task carries its own seed, derived from the experiment's root
   seed with :func:`repro.runtime.seeding.derive_seed` — no task reads
   a shared random stream;
2. results are collected *in task order*, never completion order, so
   downstream floating-point reductions see the same operand order;
3. tasks are pure functions of their arguments (module-level callables
   with picklable payloads).

Each task additionally reports the kernel-cache counter delta it caused
in its worker process; the executor folds those deltas — plus wall time
and task counts — into a :class:`~repro.runtime.telemetry.Telemetry`
record that experiment results expose as ``result.timing``.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence

from repro.errors import ParameterError
from repro.runtime.cache import shared_cache
from repro.runtime.telemetry import Telemetry

__all__ = ["TaskSpec", "ExperimentExecutor"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work for the executor.

    Attributes:
        fn: a *module-level* callable (workers unpickle it by reference).
        args / kwargs: picklable payload passed through verbatim; any
            per-task seed belongs in here, pre-derived via
            :func:`~repro.runtime.seeding.derive_seed`.
    """

    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


def _execute_task(task: TaskSpec) -> tuple:
    """Run one task and measure the kernel-cache traffic it caused.

    Runs in the worker process (or inline for ``workers=1``).  Returns
    ``(result, hits_delta, misses_delta)``; deltas make the counters
    exact even though forked workers inherit the parent's totals.
    """
    before = shared_cache().stats()
    result = task.fn(*task.args, **task.kwargs)
    after = shared_cache().stats()
    delta = after.delta(before)
    return result, delta.hits, delta.misses


class ExperimentExecutor:
    """Deterministic fan-out of experiment tasks over worker processes.

    Args:
        workers: process-pool size.  ``1`` (the default) executes tasks
            inline in submission order — no pool, no pickling — and is
            the reference behaviour parallel runs must reproduce
            bit-for-bit.  ``None`` or ``0`` selects ``os.cpu_count()``.

    The executor is reusable: successive :meth:`run` calls accumulate
    into :attr:`telemetry`, so a runner that fans out model replications
    and then simulator sweeps reports one combined record.

    Example:
        >>> from repro.runtime import ExperimentExecutor, TaskSpec
        >>> executor = ExperimentExecutor(workers=1)
        >>> executor.run([TaskSpec(divmod, (7, 3))])
        [(2, 1)]
    """

    def __init__(self, workers: Optional[int] = 1):
        if workers is None or workers == 0:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.telemetry = Telemetry(workers=workers)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TaskSpec]) -> List[Any]:
        """Execute ``tasks`` and return their results in task order."""
        tasks = list(tasks)
        start = time.perf_counter()
        if self.workers == 1 or len(tasks) <= 1:
            outcomes = [_execute_task(task) for task in tasks]
        else:
            # chunksize amortises IPC for large replication fans without
            # affecting results (collection order stays task order).
            chunksize = max(1, len(tasks) // (self.workers * 4))
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(tasks))
            ) as pool:
                outcomes = list(
                    pool.map(_execute_task, tasks, chunksize=chunksize)
                )
        elapsed = time.perf_counter() - start

        results = []
        hits = misses = 0
        for result, task_hits, task_misses in outcomes:
            results.append(result)
            hits += task_hits
            misses += task_misses
        self.telemetry.merge(
            Telemetry(
                wall_time=elapsed,
                tasks=len(tasks),
                workers=self.workers,
                cache_hits=hits,
                cache_misses=misses,
                batches=1,
            )
        )
        return results

    def map(
        self, fn: Callable, payloads: Sequence[tuple], **common_kwargs: Any
    ) -> List[Any]:
        """Sugar: run ``fn(*payload, **common_kwargs)`` per payload."""
        return self.run(
            [TaskSpec(fn, tuple(payload), dict(common_kwargs)) for payload in payloads]
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def record_events(self, count: int) -> None:
        """Credit ``count`` processed events (trajectories, sim events)."""
        self.telemetry.events += int(count)

    @contextlib.contextmanager
    def tracked(self) -> Iterator[None]:
        """Fold parent-process work into the telemetry.

        Wrap runner code that computes *outside* the task fan (e.g. the
        model curve of Figure 3/4(a)) so its wall time and kernel-cache
        traffic still appear in ``result.timing``.
        """
        before = shared_cache().stats()
        start = time.perf_counter()
        try:
            yield
        finally:
            delta = shared_cache().stats().delta(before)
            self.telemetry.merge(
                Telemetry(
                    wall_time=time.perf_counter() - start,
                    workers=self.workers,
                    cache_hits=delta.hits,
                    cache_misses=delta.misses,
                )
            )
