"""The parallel experiment executor.

:class:`ExperimentExecutor` fans independent tasks — model
replications, simulator runs, sweep points — out over a
``concurrent.futures`` process pool, and collapses to a deterministic
in-process loop for ``workers=1``.  Three invariants make parallel and
serial runs bit-identical:

1. every task carries its own seed, derived from the experiment's root
   seed with :func:`repro.runtime.seeding.derive_seed` — no task reads
   a shared random stream;
2. results are collected *in task order*, never completion order, so
   downstream floating-point reductions see the same operand order;
3. tasks are pure functions of their arguments (module-level callables
   with picklable payloads).

Each task additionally reports the kernel-cache counter delta it caused
in its worker process; the executor folds those deltas — plus wall time
and task counts — into a :class:`~repro.runtime.telemetry.Telemetry`
record that experiment results expose as ``result.timing``.

Crash recovery
--------------

With ``max_attempts > 1`` the executor retries failed tasks with
exponential backoff.  A retry is deterministic: when the task declares
where its seed lives (``TaskSpec.seed_index``), attempt ``a`` re-derives
it as ``derive_seed(original_seed, _ATTEMPT_SALT, a)``, so the retry
explores a fresh — but reproducible — random stream, and ``workers=1``
and ``workers=4`` agree on the final results even through failures.

A *crashed* worker (segfault, OOM kill, ``os._exit``) breaks the whole
``ProcessPoolExecutor``; the executor cannot tell the culprit task from
collateral victims, so it rebuilds the pool and re-runs every affected
task in an isolation round (one single-worker pool per task, attempt
count unchanged).  In isolation the crasher can only take itself down,
its failure is attributed correctly, and innocent tasks keep their
attempt budget — which is what keeps parallel results identical to
serial ones.

With ``on_error="partial"`` a task that exhausts its attempts yields
``None`` in the result list instead of aborting the whole run; the
failure is recorded as a :class:`~repro.runtime.telemetry.TaskFailure`
in the telemetry, so experiments can complete on partial results with
exact failure accounting.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.runtime.cache import shared_cache
from repro.runtime.seeding import derive_seed
from repro.runtime.telemetry import TaskFailure, Telemetry

__all__ = ["TaskSpec", "ExperimentExecutor"]

#: Path component separating retry streams from first-attempt streams
#: (and from every sibling task path derived off the same root seed).
_ATTEMPT_SALT = 0x7E7237


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work for the executor.

    Attributes:
        fn: a *module-level* callable (workers unpickle it by reference).
        args / kwargs: picklable payload passed through verbatim; any
            per-task seed belongs in here, pre-derived via
            :func:`~repro.runtime.seeding.derive_seed`.
        seed_index: optional position in ``args`` holding the task's
            seed.  Declaring it opts the task into deterministic
            retry-with-reseed: attempt ``a > 1`` replaces the seed with
            ``derive_seed(seed, _ATTEMPT_SALT, a)``.  Tasks without a
            ``seed_index`` are retried with identical arguments.
        checkpoint_interval: rounds between snapshots for checkpointable
            tasks (0 = not checkpointable).  When the executor has a
            ``checkpoint_dir``, such tasks receive ``checkpoint_path``
            and ``checkpoint_every`` keyword arguments, and retried
            attempts keep their *original* seed: a retry resumes the
            interrupted trajectory from its latest snapshot, so a fresh
            attempt stream would fork it (see ``docs/CHECKPOINT.md``).
        checkpoint_key: stable name for this task's checkpoint file;
            defaults to ``b{batch}-t{index}``, which is reproducible
            across process relaunches as long as the runner submits the
            same batches in the same order.
    """

    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seed_index: Optional[int] = None
    checkpoint_interval: int = 0
    checkpoint_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.seed_index is not None and not (
            0 <= self.seed_index < len(self.args)
        ):
            raise ParameterError(
                f"seed_index {self.seed_index} out of range for "
                f"{len(self.args)} positional argument(s)"
            )
        if self.checkpoint_interval < 0:
            raise ParameterError(
                f"checkpoint_interval must be >= 0, "
                f"got {self.checkpoint_interval}"
            )

    def for_attempt(self, attempt: int) -> "TaskSpec":
        """The spec to execute on the given 1-based attempt.

        Checkpointable tasks are exempt from retry-reseed: their retry
        resumes the original stream from the latest snapshot, and the
        zero-extra-draws guarantee of the resume path is what the
        seed-accounting regression tests pin down.
        """
        if (
            attempt <= 1
            or self.seed_index is None
            or self.checkpoint_interval > 0
        ):
            return self
        args = list(self.args)
        args[self.seed_index] = derive_seed(
            int(args[self.seed_index]), _ATTEMPT_SALT, attempt
        )
        return TaskSpec(self.fn, tuple(args), dict(self.kwargs),
                        seed_index=self.seed_index)


def _execute_task(task: TaskSpec) -> tuple:
    """Run one task and measure the kernel-cache traffic it caused.

    Runs in the worker process (or inline for ``workers=1``).  Returns
    ``(result, stats_delta)``; the :class:`~repro.runtime.cache.CacheStats`
    delta makes the counters (kernel lookups *and* sparse-operator
    compilations) exact even though forked workers inherit the parent's
    totals.
    """
    before = shared_cache().stats()
    result = task.fn(*task.args, **task.kwargs)
    after = shared_cache().stats()
    return result, after.delta(before)


class ExperimentExecutor:
    """Deterministic fan-out of experiment tasks over worker processes.

    Args:
        workers: process-pool size.  ``1`` (the default) executes tasks
            inline in submission order — no pool, no pickling — and is
            the reference behaviour parallel runs must reproduce
            bit-for-bit.  ``None`` or ``0`` selects ``os.cpu_count()``.
        max_attempts: attempts per task (1 = no retries, the default).
        retry_backoff: base sleep before a retry; attempt ``a`` waits
            ``retry_backoff * 2**(a - 2)`` seconds (0 disables).
        on_error: ``"raise"`` (default) propagates the final failure of
            any task; ``"partial"`` records it and yields ``None`` for
            that slot, letting the run complete on partial results.
        checkpoint_dir: directory for task checkpoints.  Tasks with a
            ``checkpoint_interval`` get ``checkpoint_path`` /
            ``checkpoint_every`` keyword arguments injected; an attempt
            that finds an existing snapshot resumes it (counted in
            ``telemetry.resumes``) instead of recomputing finished
            rounds — including attempts dispatched by a relaunched
            process after the previous one was killed outright.

    The executor is reusable: successive :meth:`run` calls accumulate
    into :attr:`telemetry`, so a runner that fans out model replications
    and then simulator sweeps reports one combined record.

    Example:
        >>> from repro.runtime import ExperimentExecutor, TaskSpec
        >>> executor = ExperimentExecutor(workers=1)
        >>> executor.run([TaskSpec(divmod, (7, 3))])
        [(2, 1)]
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        *,
        max_attempts: int = 1,
        retry_backoff: float = 0.0,
        on_error: str = "raise",
        checkpoint_dir: Optional[str] = None,
    ):
        if workers is None or workers == 0:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if retry_backoff < 0:
            raise ParameterError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if on_error not in ("raise", "partial"):
            raise ParameterError(
                f"on_error must be 'raise' or 'partial', got {on_error!r}"
            )
        self.workers = workers
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.on_error = on_error
        self.checkpoint_dir = checkpoint_dir
        self.telemetry = Telemetry(workers=workers)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TaskSpec]) -> List[Any]:
        """Execute ``tasks``; results in task order (``None`` = abandoned).

        Raises the final error of the first (lowest-index) exhausted
        task under ``on_error="raise"``; under ``"partial"`` abandoned
        slots come back as ``None`` with a
        :class:`~repro.runtime.telemetry.TaskFailure` in the telemetry.
        """
        tasks = list(tasks)
        start = time.perf_counter()
        outcomes: List[Optional[tuple]] = [None] * len(tasks)
        batch = Telemetry(workers=self.workers, batches=1)
        tasks = self._prepare_checkpoints(tasks, batch)
        try:
            if self.workers == 1 or len(tasks) <= 1:
                self._run_serial(tasks, outcomes, batch)
            elif self.max_attempts == 1 and self.on_error == "raise":
                # Fast path: chunked pool.map amortises IPC for large
                # replication fans (collection order stays task order).
                chunksize = max(1, len(tasks) // (self.workers * 4))
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(self.workers, len(tasks))
                ) as pool:
                    outcomes[:] = pool.map(
                        _execute_task, tasks, chunksize=chunksize
                    )
            else:
                self._run_resilient(tasks, outcomes, batch)
        finally:
            batch.wall_time = time.perf_counter() - start
            batch.tasks = len(tasks)
            self.telemetry.merge(batch)

        results = []
        hits = misses = sparse_hits = sparse_misses = evictions = 0
        for outcome in outcomes:
            if outcome is None:
                results.append(None)
                continue
            result, delta = outcome
            results.append(result)
            hits += delta.hits
            misses += delta.misses
            sparse_hits += delta.sparse_hits
            sparse_misses += delta.sparse_misses
            evictions += delta.evictions
        self.telemetry.cache_hits += hits
        self.telemetry.cache_misses += misses
        self.telemetry.sparse_cache_hits += sparse_hits
        self.telemetry.sparse_cache_misses += sparse_misses
        self.telemetry.cache_evictions += evictions
        return results

    # -- checkpoint wiring -----------------------------------------------
    def _prepare_checkpoints(
        self, tasks: List[TaskSpec], batch: Telemetry
    ) -> List[TaskSpec]:
        """Inject checkpoint kwargs into checkpointable tasks.

        Filenames are derived from ``(batch number, task index)`` unless
        the task names its own key, so a relaunched process that submits
        the same batches derives the same paths — that is the whole
        resume-after-SIGKILL story.  Tasks whose snapshot already exists
        at submission are counted as resumes up front (their very first
        attempt will pick the snapshot up).
        """
        if self.checkpoint_dir is None or not any(
            task.checkpoint_interval > 0 for task in tasks
        ):
            return tasks
        from repro.checkpoint.store import CheckpointStore

        store = CheckpointStore(self.checkpoint_dir)
        batch_id = self.telemetry.batches  # batches completed so far
        prepared: List[TaskSpec] = []
        for index, task in enumerate(tasks):
            if task.checkpoint_interval <= 0:
                prepared.append(task)
                continue
            key = task.checkpoint_key or f"b{batch_id}-t{index}"
            path = store.path_for(key)
            if path.is_file():
                batch.resumes += 1
            kwargs = dict(task.kwargs)
            kwargs["checkpoint_path"] = str(path)
            kwargs["checkpoint_every"] = task.checkpoint_interval
            prepared.append(
                TaskSpec(
                    task.fn,
                    task.args,
                    kwargs,
                    seed_index=task.seed_index,
                    checkpoint_interval=task.checkpoint_interval,
                    checkpoint_key=key,
                )
            )
        return prepared

    def _note_retry_resume(self, task: TaskSpec, batch: Telemetry) -> None:
        """Count a retry that will resume from an existing snapshot."""
        if task.checkpoint_interval <= 0:
            return
        path = task.kwargs.get("checkpoint_path")
        if path and os.path.isfile(path):
            batch.resumes += 1

    # -- serial reference ------------------------------------------------
    def _run_serial(
        self,
        tasks: List[TaskSpec],
        outcomes: List[Optional[tuple]],
        batch: Telemetry,
    ) -> None:
        """In-process loop with inline retries (the reference semantics).

        Only raised exceptions are survivable here: a task that kills
        its process kills the run (there is no worker to sacrifice).
        Use ``workers > 1`` for hard-crash isolation.
        """
        for index, task in enumerate(tasks):
            for attempt in range(1, self.max_attempts + 1):
                try:
                    if attempt > 1:
                        self._note_retry_resume(task, batch)
                    outcomes[index] = _execute_task(task.for_attempt(attempt))
                    break
                except Exception as exc:
                    batch.task_failures += 1
                    if attempt < self.max_attempts:
                        batch.retries += 1
                        self._backoff(attempt + 1)
                        continue
                    self._abandon(batch, index, attempt, exc, task)

    # -- resilient pooled mode -------------------------------------------
    def _run_resilient(
        self,
        tasks: List[TaskSpec],
        outcomes: List[Optional[tuple]],
        batch: Telemetry,
    ) -> None:
        """Pooled execution that survives raised errors *and* dead workers.

        Rounds of per-task futures; a round whose pool broke (a worker
        died) re-runs its unresolved tasks in *isolation* — one
        single-worker pool each — so the crasher is identified and
        charged an attempt while collateral tasks keep their budget.
        """
        pending: List[Tuple[int, int]] = [(i, 1) for i in range(len(tasks))]
        isolate = False
        round_number = 1
        while pending:
            retry: List[Tuple[int, int]] = []
            if round_number > 1:
                self._backoff(round_number)
            if isolate:
                for index, attempt in pending:
                    if attempt > 1:
                        self._note_retry_resume(tasks[index], batch)
                    spec = tasks[index].for_attempt(attempt)
                    try:
                        with concurrent.futures.ProcessPoolExecutor(
                            max_workers=1
                        ) as solo:
                            outcomes[index] = solo.submit(
                                _execute_task, spec
                            ).result()
                    except Exception as exc:
                        self._attempt_failed(
                            batch, index, attempt, exc, tasks[index], retry
                        )
                isolate = False
            else:
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(self.workers, len(pending))
                )
                for i, a in pending:
                    if a > 1:
                        self._note_retry_resume(tasks[i], batch)
                futures = [
                    (i, a, pool.submit(_execute_task, tasks[i].for_attempt(a)))
                    for i, a in pending
                ]
                broken: List[Tuple[int, int]] = []
                for index, attempt, future in futures:
                    try:
                        outcomes[index] = future.result()
                    except BrokenExecutor:
                        # Collateral or culprit — indistinguishable from
                        # here; settle it in an isolation round without
                        # charging anyone an attempt yet.
                        broken.append((index, attempt))
                    except Exception as exc:
                        self._attempt_failed(
                            batch, index, attempt, exc, tasks[index], retry
                        )
                pool.shutdown(wait=False)
                if broken:
                    retry = broken + retry
                    isolate = True
            pending = sorted(retry)
            round_number += 1

    # -- failure bookkeeping ---------------------------------------------
    def _attempt_failed(
        self,
        batch: Telemetry,
        index: int,
        attempt: int,
        exc: Exception,
        task: TaskSpec,
        retry: List[Tuple[int, int]],
    ) -> None:
        batch.task_failures += 1
        if attempt < self.max_attempts:
            batch.retries += 1
            retry.append((index, attempt + 1))
        else:
            self._abandon(batch, index, attempt, exc, task)

    def _abandon(
        self,
        batch: Telemetry,
        index: int,
        attempt: int,
        exc: Exception,
        task: TaskSpec,
    ) -> None:
        batch.tasks_failed += 1
        batch.failure_log.append(
            TaskFailure(
                index=index,
                attempts=attempt,
                error=f"{type(exc).__name__}: {exc}",
                fn=getattr(task.fn, "__name__", repr(task.fn)),
            )
        )
        if self.on_error == "raise":
            raise exc

    def _backoff(self, attempt: int) -> None:
        if self.retry_backoff > 0:
            time.sleep(self.retry_backoff * 2 ** min(attempt - 2, 10))

    def map(
        self, fn: Callable, payloads: Sequence[tuple], **common_kwargs: Any
    ) -> List[Any]:
        """Sugar: run ``fn(*payload, **common_kwargs)`` per payload."""
        return self.run(
            [TaskSpec(fn, tuple(payload), dict(common_kwargs)) for payload in payloads]
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def record_events(self, count: int) -> None:
        """Credit ``count`` processed events (trajectories, sim events)."""
        self.telemetry.events += int(count)

    @contextlib.contextmanager
    def tracked(self) -> Iterator[None]:
        """Fold parent-process work into the telemetry.

        Wrap runner code that computes *outside* the task fan (e.g. the
        model curve of Figure 3/4(a)) so its wall time and kernel-cache
        traffic still appear in ``result.timing``.
        """
        before = shared_cache().stats()
        start = time.perf_counter()
        try:
            yield
        finally:
            delta = shared_cache().stats().delta(before)
            self.telemetry.merge(
                Telemetry(
                    wall_time=time.perf_counter() - start,
                    workers=self.workers,
                    cache_hits=delta.hits,
                    cache_misses=delta.misses,
                    sparse_cache_hits=delta.sparse_hits,
                    sparse_cache_misses=delta.sparse_misses,
                    cache_evictions=delta.evictions,
                )
            )
