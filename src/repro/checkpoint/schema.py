"""Snapshot schema v1: full swarm state at a round boundary.

The document captured here is everything a fresh process needs to
continue a run so that the continuation is **bit-identical** to the
uninterrupted one — same RNG draws, same iteration orders, same
`SwarmResult` fingerprint.  Per component that means:

* **RNG streams** — the swarm's PCG64 state and (when a fault plan is
  attached) the injector's isolated stream, captured as the
  ``bit_generator.state`` dicts numpy exposes (plain ints; JSON-safe).
* **Engine** — clock, processed count, tie-breaker counter, and the
  pending heap *in its internal order* (see
  :meth:`repro.sim.engine.DiscreteEventEngine.snapshot_state`).
* **Peers** — bitfield masks, neighbor/partner sets (as sorted arrays;
  every RNG-consuming iteration over these sets is canonicalized to
  sorted order in the simulator), block progress (as an *ordered* array
  of pairs — partial-piece priority iterates dict insertion order),
  and full per-peer stats.
* **Tracker** — registry in ascending-id order (the live dict's
  insertion order is ascending id and ``dict.pop`` preserves order, so
  rebuilding by ascending id reproduces announce candidate order),
  id counter, bootstrap-trap set, population log.
* **Potential-set cache** — cached member lists and the dirty set, so
  the first resumed round recomputes exactly the peers the
  uninterrupted run would have recomputed.
* **Metrics / counters** — every series the result fingerprint covers.

Order-sensitive state is stored in JSON arrays, never in object key
order, which lets the container serialize with ``sort_keys=True``.

The soa backend (:mod:`repro.sim.soa`) writes a second document flavor
under the same schema version, marked with a top-level
``"backend": "soa"``: per-slot arrays for every alive slot plus the
free-list order, which together rebuild the slot layout exactly (slot
indices feed the backend's RNG-consuming shuffles, so layout is part of
the deterministic state).  :func:`restore_swarm` dispatches on the
marker; documents without it are object-backend snapshots.

Schema changes MUST bump :data:`SCHEMA_VERSION`; the golden-format test
(`tests/checkpoint/test_golden_format.py`) fails loudly when the
emitted document drifts from the committed v1 fixture.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CheckpointError
from repro.sim.bitfield import Bitfield
from repro.sim.config import SimConfig
from repro.sim.metrics import CompletedDownload, MetricsCollector
from repro.sim.peer import Peer, PeerStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.sim.swarm import Swarm

__all__ = [
    "SCHEMA_VERSION",
    "snapshot_swarm",
    "snapshot_soa_swarm",
    "restore_swarm",
]

#: Version of the snapshot document layout (independent of the on-disk
#: container version in ``repro.checkpoint.format``).
SCHEMA_VERSION = 1


def _num(value):
    """Collapse numpy scalars to native Python numbers.

    ``np.float64`` is a ``float`` subclass and would serialize, but
    ``np.int64`` is not an ``int`` and json.dumps rejects it; normalize
    both so the schema never depends on which call site produced a
    number.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _pairs(series) -> list:
    """``[(a, b), ...]`` → JSON array-of-arrays with native numbers."""
    return [[_num(a), _num(b)] for a, b in series]


def _triples(series) -> list:
    return [[_num(a), _num(b), _num(c)] for a, b, c in series]


# ----------------------------------------------------------------------
# Peer stats
# ----------------------------------------------------------------------
def _snapshot_stats(stats: PeerStats) -> dict:
    return {
        "joined_at": _num(stats.joined_at),
        "completed_at": _num(stats.completed_at),
        "piece_times": [_num(t) for t in stats.piece_times],
        "piece_log": _pairs(stats.piece_log),
        "potential_series": _pairs(stats.potential_series),
        "connection_series": _pairs(stats.connection_series),
        "shaken_at": _num(stats.shaken_at),
    }


def _restore_stats(doc: dict) -> PeerStats:
    return PeerStats(
        joined_at=float(doc["joined_at"]),
        completed_at=(
            None if doc["completed_at"] is None else float(doc["completed_at"])
        ),
        piece_times=[float(t) for t in doc["piece_times"]],
        piece_log=[(float(t), int(p)) for t, p in doc["piece_log"]],
        potential_series=[(float(t), int(s)) for t, s in doc["potential_series"]],
        connection_series=[
            (float(t), int(c)) for t, c in doc["connection_series"]
        ],
        shaken_at=(
            None if doc["shaken_at"] is None else float(doc["shaken_at"])
        ),
    )


# ----------------------------------------------------------------------
# Peers
# ----------------------------------------------------------------------
def _snapshot_peer(peer: Peer) -> dict:
    return {
        "peer_id": peer.peer_id,
        "bitfield_mask": peer.bitfield.mask,
        "neighbors": sorted(peer.neighbors),
        "partners": sorted(peer.partners),
        "is_seed": peer.is_seed,
        "instrumented": peer.instrumented,
        "stats": _snapshot_stats(peer.stats),
        "seeded_pieces": sorted(peer.seeded_pieces),
        "shaken": peer.shaken,
        "seed_until": _num(peer.seed_until),
        "upload_capacity": _num(peer.upload_capacity),
        # Insertion order preserved on purpose: strict piece priority
        # iterates block_progress in dict order when picking a partial
        # piece to finish.
        "block_progress": [
            [int(piece), int(count)]
            for piece, count in peer.block_progress.items()
        ],
    }


def _restore_peer(doc: dict, num_pieces: int) -> Peer:
    peer = Peer(
        int(doc["peer_id"]),
        num_pieces,
        joined_at=float(doc["stats"]["joined_at"]),
        is_seed=bool(doc["is_seed"]),
        instrumented=bool(doc["instrumented"]),
    )
    peer.bitfield = Bitfield(num_pieces, int(doc["bitfield_mask"]))
    peer.neighbors = {int(n) for n in doc["neighbors"]}
    peer.partners = {int(p) for p in doc["partners"]}
    peer.stats = _restore_stats(doc["stats"])
    peer.seeded_pieces = {int(p) for p in doc["seeded_pieces"]}
    peer.shaken = bool(doc["shaken"])
    peer.seed_until = (
        None if doc["seed_until"] is None else float(doc["seed_until"])
    )
    peer.upload_capacity = (
        None if doc["upload_capacity"] is None else int(doc["upload_capacity"])
    )
    peer.block_progress = {
        int(piece): int(count) for piece, count in doc["block_progress"]
    }
    return peer


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def _snapshot_metrics(metrics: MetricsCollector) -> dict:
    return {
        "max_conns": metrics.max_conns,
        "entropy_every": metrics.entropy_every,
        "entropy_includes_seeds": metrics.entropy_includes_seeds,
        "occupancy_warmup": metrics.occupancy_warmup,
        "occupancy_scope": metrics.occupancy_scope,
        "population_series": _triples(metrics.population_series),
        "entropy_series": _pairs(metrics.entropy_series),
        "aborted": _pairs(metrics.aborted),
        "rounds_observed": metrics.rounds_observed,
        "occupancy_sums": [float(v) for v in metrics._occupancy_sums],
        "occupancy_rounds": metrics._occupancy_rounds,
        "expected_total_rounds": metrics._expected_total_rounds,
        "completed": [
            {
                "peer_id": c.peer_id,
                "joined_at": _num(c.joined_at),
                "completed_at": _num(c.completed_at),
                "stats": _snapshot_stats(c.stats),
                "shaken": c.shaken,
                "upload_capacity": _num(c.upload_capacity),
            }
            for c in metrics.completed
        ],
    }


def _restore_metrics(doc: dict) -> MetricsCollector:
    metrics = MetricsCollector(
        int(doc["max_conns"]),
        entropy_every=int(doc["entropy_every"]),
        entropy_includes_seeds=bool(doc["entropy_includes_seeds"]),
        occupancy_warmup=float(doc["occupancy_warmup"]),
        occupancy_scope=str(doc["occupancy_scope"]),
    )
    metrics.population_series = [
        (float(t), int(le), int(se)) for t, le, se in doc["population_series"]
    ]
    metrics.entropy_series = [
        (float(t), float(e)) for t, e in doc["entropy_series"]
    ]
    metrics.aborted = [(float(t), int(n)) for t, n in doc["aborted"]]
    metrics.rounds_observed = int(doc["rounds_observed"])
    metrics._occupancy_sums = np.asarray(
        doc["occupancy_sums"], dtype=np.float64
    )
    metrics._occupancy_rounds = int(doc["occupancy_rounds"])
    metrics._expected_total_rounds = (
        None
        if doc["expected_total_rounds"] is None
        else int(doc["expected_total_rounds"])
    )
    metrics.completed = [
        CompletedDownload(
            peer_id=int(c["peer_id"]),
            joined_at=float(c["joined_at"]),
            completed_at=float(c["completed_at"]),
            stats=_restore_stats(c["stats"]),
            shaken=bool(c["shaken"]),
            upload_capacity=(
                None
                if c["upload_capacity"] is None
                else int(c["upload_capacity"])
            ),
        )
        for c in doc["completed"]
    ]
    return metrics


# ----------------------------------------------------------------------
# Swarm (top level)
# ----------------------------------------------------------------------
def snapshot_swarm(swarm: "Swarm") -> dict:
    """Full snapshot document for ``swarm`` (schema v1).

    Must be called at a round boundary (between engine events); the
    swarm's ``_maybe_checkpoint`` hook guarantees this.
    """
    tracker = swarm.tracker
    alive = [_snapshot_peer(peer) for peer in tracker.peers()]
    alive_ids = {doc["peer_id"] for doc in alive}
    # Instrumented peers survive departure (their stats feed the result
    # bundle); departed ones exist only on the swarm's list.
    departed = [
        _snapshot_peer(peer)
        for peer in swarm.instrumented_peers
        if peer.peer_id not in alive_ids
    ]
    return {
        "schema_version": SCHEMA_VERSION,
        "config": swarm.config.to_dict(),
        "swarm": {
            "rng": _sanitize_rng_state(swarm.rng.bit_generator.state),
            "rounds": swarm._rounds,
            "setup_done": swarm._setup_done,
            "seed_upload_count": swarm.seed_upload_count,
            "checkpoints_written": swarm.checkpoints_written,
            "piece_counts": [int(c) for c in swarm.piece_counts],
            "connection_stats": {
                "survived": swarm.connection_stats.survived,
                "dropped": swarm.connection_stats.dropped,
                "attempts": swarm.connection_stats.attempts,
                "formed": swarm.connection_stats.formed,
            },
            "instrument_first": swarm.instrument_first,
            "instrumented_avoid_seeds": swarm.instrumented_avoid_seeds,
            "instrumented_start_empty": swarm.instrumented_start_empty,
            "rarity_view": swarm.rarity_view,
            # List order matters: _spawn_peer appends in instrumentation
            # order and the result bundle exposes the list as-is.
            "instrumented_ids": [
                p.peer_id for p in swarm.instrumented_peers
            ],
        },
        "engine": swarm.engine.snapshot_state(),
        "tracker": {
            "next_id": tracker._next_id,
            "bootstrap_trapped": sorted(tracker._bootstrap_trapped),
            "population_log": _triples(tracker.population_log),
        },
        "peers": alive,
        "departed_instrumented": departed,
        "metrics": _snapshot_metrics(swarm.metrics),
        "potential": {
            "cache": [
                [pid, list(members)]
                for pid, members in sorted(swarm._potential_sets._cache.items())
            ],
            "dirty": sorted(swarm._potential_sets._dirty),
        },
        "faults": (
            None
            if swarm.fault_injector is None
            else swarm.fault_injector.snapshot_state()
        ),
    }


# ----------------------------------------------------------------------
# SoA swarm (array backend)
# ----------------------------------------------------------------------
def _opt(value):
    """NaN → None (the container's canonical JSON forbids NaN)."""
    value = float(value)
    return None if np.isnan(value) else value


def _nan_column(values) -> np.ndarray:
    return np.array(
        [np.nan if v is None else float(v) for v in values], dtype=np.float64
    )


def snapshot_soa_swarm(swarm) -> dict:
    """Snapshot document for a :class:`~repro.sim.soa.SoaSwarm`.

    Same container and schema version as the object document, marked
    with a top-level ``"backend": "soa"`` for :func:`restore_swarm`'s
    dispatch.  Peer state is stored for alive slots only (ascending
    slot order); free slots are fully reset on allocation, so alive
    rows plus the free-list order reconstruct the store exactly.
    """
    store = swarm.store
    slots = np.flatnonzero(store.alive)
    return {
        "schema_version": SCHEMA_VERSION,
        "backend": "soa",
        "config": swarm.config.to_dict(),
        "swarm": {
            "rng": _sanitize_rng_state(swarm.rng.bit_generator.state),
            "rounds": swarm._rounds,
            "setup_done": swarm._setup_done,
            "seed_upload_count": swarm.seed_upload_count,
            "checkpoints_written": swarm.checkpoints_written,
            "piece_counts": [int(c) for c in swarm.piece_counts],
            "connection_stats": {
                "survived": swarm.connection_stats.survived,
                "dropped": swarm.connection_stats.dropped,
                "attempts": swarm.connection_stats.attempts,
                "formed": swarm.connection_stats.formed,
            },
            "instrumented_start_empty": swarm.instrumented_start_empty,
            "rarity_view": swarm.rarity_view,
            "next_id": swarm._next_id,
            "n_leech": swarm._n_leech,
            "n_seeds": swarm._n_seeds,
            "population_log": _triples(swarm._population_log),
            "pending_announce": [int(s) for s in swarm._pending_announce],
            # Row order is deterministic state: maintenance and exchange
            # iterate pairs in storage order.
            "pairs": [[int(a), int(b)] for a, b in swarm._pairs],
        },
        "engine": swarm.engine.snapshot_state(),
        "store": {
            "capacity": store.capacity,
            "nbr_width": store.nbr_width,
            # LIFO pop order — the next allocation must hand out the
            # same slots the uninterrupted run would have.
            "free": [int(s) for s in store.free],
            "slots": [int(s) for s in slots],
            "peer_id": [int(v) for v in store.peer_id[slots]],
            "is_seed": [bool(v) for v in store.is_seed[slots]],
            "shaken": [bool(v) for v in store.shaken[slots]],
            "counts": [int(v) for v in store.counts[slots]],
            "bits": [[int(w) for w in row] for row in store.bits[slots]],
            "joined_at": [float(v) for v in store.joined_at[slots]],
            "seed_until": [_opt(v) for v in store.seed_until[slots]],
            "first_piece_at": [_opt(v) for v in store.first_piece_at[slots]],
            "prelast_at": [_opt(v) for v in store.prelast_at[slots]],
            "shaken_at": [_opt(v) for v in store.shaken_at[slots]],
            "upload_capacity": [
                int(v) for v in store.upload_capacity[slots]
            ],
            # Neighbor rows trimmed to their fill; in-row order is the
            # append order the refill logic depends on.
            "nbr": [
                [int(v) for v in store.nbr[s, : store.nbr_deg[s]]]
                for s in slots
            ],
            "seeded": [[int(w) for w in row] for row in store.seeded[slots]],
        },
        "metrics": _snapshot_metrics(swarm.metrics),
        "faults": (
            None
            if swarm.fault_injector is None
            else swarm.fault_injector.snapshot_state()
        ),
    }


def _restore_soa_swarm(document: dict, swarm_cls=None, **swarm_kwargs):
    """Rebuild a ready-to-continue ``SoaSwarm`` from a soa document.

    ``swarm_cls`` lets the sharded backend restore the same document
    shape into a :class:`~repro.sim.sharded.ShardEngine` (an ``SoaSwarm``
    subclass with no extra snapshot state of its own).
    """
    from repro.faults.plan import FaultPlan
    from repro.sim.soa import PeerStore, SoaSwarm

    if swarm_cls is None:
        swarm_cls = SoaSwarm
    config = SimConfig.from_dict(document["config"])
    sw = document["swarm"]
    faults_doc = document["faults"]
    plan = (
        None if faults_doc is None else FaultPlan.from_dict(faults_doc["plan"])
    )
    metrics = _restore_metrics(document["metrics"])

    swarm = swarm_cls(
        config,
        backend="soa",
        instrumented_start_empty=bool(sw["instrumented_start_empty"]),
        rarity_view=str(sw["rarity_view"]),
        metrics=metrics,
        faults=plan,
        **swarm_kwargs,
    )
    swarm.rng.bit_generator.state = sw["rng"]
    if swarm.fault_injector is not None:
        swarm.fault_injector.restore_state(faults_doc)
    swarm.engine.restore_state(document["engine"])

    st = document["store"]
    store = PeerStore(
        int(st["capacity"]), config.num_pieces, int(st["nbr_width"])
    )
    store.free = [int(s) for s in st["free"]]
    slots = np.asarray(st["slots"], dtype=np.int64)
    if slots.size:
        store.alive[slots] = True
        store.peer_id[slots] = np.asarray(st["peer_id"], dtype=np.int64)
        store.is_seed[slots] = np.asarray(st["is_seed"], dtype=bool)
        store.shaken[slots] = np.asarray(st["shaken"], dtype=bool)
        store.counts[slots] = np.asarray(st["counts"], dtype=np.int64)
        store.bits[slots] = np.array(
            [[int(w) for w in row] for row in st["bits"]], dtype=np.uint64
        )
        store.joined_at[slots] = np.asarray(
            st["joined_at"], dtype=np.float64
        )
        store.seed_until[slots] = _nan_column(st["seed_until"])
        store.first_piece_at[slots] = _nan_column(st["first_piece_at"])
        store.prelast_at[slots] = _nan_column(st["prelast_at"])
        store.shaken_at[slots] = _nan_column(st["shaken_at"])
        store.upload_capacity[slots] = np.asarray(
            st["upload_capacity"], dtype=np.int64
        )
        for slot, row in zip(slots, st["nbr"]):
            if row:
                store.nbr[slot, : len(row)] = [int(v) for v in row]
            store.nbr_deg[slot] = len(row)
        store.seeded[slots] = np.array(
            [[int(w) for w in row] for row in st["seeded"]], dtype=np.uint64
        )
    swarm.store = store

    swarm._pairs = np.asarray(sw["pairs"], dtype=np.int64).reshape(-1, 2)
    swarm._id_to_slot = {
        int(store.peer_id[s]): int(s) for s in slots
    }
    swarm._next_id = int(sw["next_id"])
    swarm._n_leech = int(sw["n_leech"])
    swarm._n_seeds = int(sw["n_seeds"])
    swarm._population_log = [
        (float(t), int(le), int(se)) for t, le, se in sw["population_log"]
    ]
    swarm._pending_announce = [int(s) for s in sw["pending_announce"]]
    swarm._alive_dirty = True
    swarm.piece_counts = np.asarray(sw["piece_counts"], dtype=np.int64)
    stats = sw["connection_stats"]
    swarm.connection_stats.survived = int(stats["survived"])
    swarm.connection_stats.dropped = int(stats["dropped"])
    swarm.connection_stats.attempts = int(stats["attempts"])
    swarm.connection_stats.formed = int(stats["formed"])
    swarm.seed_upload_count = int(sw["seed_upload_count"])
    swarm.checkpoints_written = int(sw["checkpoints_written"])
    swarm._rounds = int(sw["rounds"])
    swarm._setup_done = bool(sw["setup_done"])
    swarm.resumed_from_round = swarm._rounds
    return swarm


def _sanitize_rng_state(state: dict) -> dict:
    """numpy's PCG64 state dict, with any numpy scalars collapsed."""
    return {
        "bit_generator": state["bit_generator"],
        "state": {key: _num(value) for key, value in state["state"].items()},
        "has_uint32": _num(state["has_uint32"]),
        "uinteger": _num(state["uinteger"]),
    }


def restore_swarm(document: dict, **swarm_kwargs) -> "Swarm":
    """Rebuild a ready-to-continue :class:`Swarm` from a snapshot document.

    The returned swarm has ``_setup_done=True``; calling :meth:`run`
    continues from the snapshot round and produces a result whose
    fingerprint matches the uninterrupted run's.

    ``swarm_kwargs`` may carry run-control options that are *not* part
    of the snapshot (``profile``, ``checkpoint_path``,
    ``checkpoint_every``) — simulation-defining options come from the
    document itself.
    """
    from repro.faults.plan import FaultPlan
    from repro.sim.swarm import Swarm

    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CheckpointError(
            f"snapshot schema version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    if document.get("backend") == "soa":
        try:
            return _restore_soa_swarm(document, **swarm_kwargs)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"snapshot document is structurally invalid: {exc!r}"
            )
    if document.get("backend") == "sharded":
        from repro.sim.sharded import restore_sharded_swarm

        try:
            return restore_sharded_swarm(document, **swarm_kwargs)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"snapshot document is structurally invalid: {exc!r}"
            )
    try:
        config = SimConfig.from_dict(document["config"])
        sw = document["swarm"]
        faults_doc = document["faults"]
        plan = (
            None
            if faults_doc is None
            else FaultPlan.from_dict(faults_doc["plan"])
        )
        metrics = _restore_metrics(document["metrics"])

        swarm = Swarm(
            config,
            instrument_first=int(sw["instrument_first"]),
            instrumented_avoid_seeds=bool(sw["instrumented_avoid_seeds"]),
            instrumented_start_empty=bool(sw["instrumented_start_empty"]),
            rarity_view=str(sw["rarity_view"]),
            metrics=metrics,
            faults=plan,
            **swarm_kwargs,
        )

        # RNG streams first: the constructor performs no draws, so the
        # restored position is exactly the snapshot position.
        swarm.rng.bit_generator.state = sw["rng"]
        if swarm.fault_injector is not None:
            swarm.fault_injector.restore_state(faults_doc)

        swarm.engine.restore_state(document["engine"])

        # Tracker registry: insert in ascending-id order (the snapshot
        # stores peers that way) so announce candidate iteration matches
        # the uninterrupted run's insertion-ordered dict.
        tracker = swarm.tracker
        tracker._peers = {}
        for peer_doc in document["peers"]:
            peer = _restore_peer(peer_doc, config.num_pieces)
            tracker._peers[peer.peer_id] = peer
        tracker._next_id = int(document["tracker"]["next_id"])
        tracker._bootstrap_trapped = {
            int(pid) for pid in document["tracker"]["bootstrap_trapped"]
        }
        tracker.population_log = [
            (float(t), int(le), int(se))
            for t, le, se in document["tracker"]["population_log"]
        ]

        # Instrumented list: alive entries must alias the tracker's peer
        # objects (they keep accumulating stats); departed ones are
        # rebuilt from their archived snapshots, preserving list order.
        departed = {
            doc["peer_id"]: doc for doc in document["departed_instrumented"]
        }
        swarm.instrumented_peers = [
            tracker._peers[pid]
            if pid in tracker._peers
            else _restore_peer(departed[pid], config.num_pieces)
            for pid in (int(p) for p in sw["instrumented_ids"])
        ]

        swarm.piece_counts = np.asarray(sw["piece_counts"], dtype=np.int64)
        # Mutate the cache containers IN PLACE: the tracker's neighbor
        # listener is the bound method ``_dirty.add`` of the original
        # set object — rebinding the attribute to a fresh set would
        # orphan the listener and silently drop invalidations.
        cache = swarm._potential_sets._cache
        cache.clear()
        cache.update(
            (int(pid), [int(m) for m in members])
            for pid, members in document["potential"]["cache"]
        )
        dirty = swarm._potential_sets._dirty
        dirty.clear()
        dirty.update(int(pid) for pid in document["potential"]["dirty"])
        stats = sw["connection_stats"]
        swarm.connection_stats.survived = int(stats["survived"])
        swarm.connection_stats.dropped = int(stats["dropped"])
        swarm.connection_stats.attempts = int(stats["attempts"])
        swarm.connection_stats.formed = int(stats["formed"])
        swarm.seed_upload_count = int(sw["seed_upload_count"])
        swarm.checkpoints_written = int(sw["checkpoints_written"])
        swarm._rounds = int(sw["rounds"])
        swarm._setup_done = bool(sw["setup_done"])
        swarm.resumed_from_round = swarm._rounds
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"snapshot document is structurally invalid: {exc!r}"
        )
    return swarm
