"""Snapshot schema v1: full swarm state at a round boundary.

The document captured here is everything a fresh process needs to
continue a run so that the continuation is **bit-identical** to the
uninterrupted one — same RNG draws, same iteration orders, same
`SwarmResult` fingerprint.  Per component that means:

* **RNG streams** — the swarm's PCG64 state and (when a fault plan is
  attached) the injector's isolated stream, captured as the
  ``bit_generator.state`` dicts numpy exposes (plain ints; JSON-safe).
* **Engine** — clock, processed count, tie-breaker counter, and the
  pending heap *in its internal order* (see
  :meth:`repro.sim.engine.DiscreteEventEngine.snapshot_state`).
* **Peers** — bitfield masks, neighbor/partner sets (as sorted arrays;
  every RNG-consuming iteration over these sets is canonicalized to
  sorted order in the simulator), block progress (as an *ordered* array
  of pairs — partial-piece priority iterates dict insertion order),
  and full per-peer stats.
* **Tracker** — registry in ascending-id order (the live dict's
  insertion order is ascending id and ``dict.pop`` preserves order, so
  rebuilding by ascending id reproduces announce candidate order),
  id counter, bootstrap-trap set, population log.
* **Potential-set cache** — cached member lists and the dirty set, so
  the first resumed round recomputes exactly the peers the
  uninterrupted run would have recomputed.
* **Metrics / counters** — every series the result fingerprint covers.

Order-sensitive state is stored in JSON arrays, never in object key
order, which lets the container serialize with ``sort_keys=True``.

Schema changes MUST bump :data:`SCHEMA_VERSION`; the golden-format test
(`tests/checkpoint/test_golden_format.py`) fails loudly when the
emitted document drifts from the committed v1 fixture.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CheckpointError
from repro.sim.bitfield import Bitfield
from repro.sim.config import SimConfig
from repro.sim.metrics import CompletedDownload, MetricsCollector
from repro.sim.peer import Peer, PeerStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.sim.swarm import Swarm

__all__ = ["SCHEMA_VERSION", "snapshot_swarm", "restore_swarm"]

#: Version of the snapshot document layout (independent of the on-disk
#: container version in ``repro.checkpoint.format``).
SCHEMA_VERSION = 1


def _num(value):
    """Collapse numpy scalars to native Python numbers.

    ``np.float64`` is a ``float`` subclass and would serialize, but
    ``np.int64`` is not an ``int`` and json.dumps rejects it; normalize
    both so the schema never depends on which call site produced a
    number.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _pairs(series) -> list:
    """``[(a, b), ...]`` → JSON array-of-arrays with native numbers."""
    return [[_num(a), _num(b)] for a, b in series]


def _triples(series) -> list:
    return [[_num(a), _num(b), _num(c)] for a, b, c in series]


# ----------------------------------------------------------------------
# Peer stats
# ----------------------------------------------------------------------
def _snapshot_stats(stats: PeerStats) -> dict:
    return {
        "joined_at": _num(stats.joined_at),
        "completed_at": _num(stats.completed_at),
        "piece_times": [_num(t) for t in stats.piece_times],
        "piece_log": _pairs(stats.piece_log),
        "potential_series": _pairs(stats.potential_series),
        "connection_series": _pairs(stats.connection_series),
        "shaken_at": _num(stats.shaken_at),
    }


def _restore_stats(doc: dict) -> PeerStats:
    return PeerStats(
        joined_at=float(doc["joined_at"]),
        completed_at=(
            None if doc["completed_at"] is None else float(doc["completed_at"])
        ),
        piece_times=[float(t) for t in doc["piece_times"]],
        piece_log=[(float(t), int(p)) for t, p in doc["piece_log"]],
        potential_series=[(float(t), int(s)) for t, s in doc["potential_series"]],
        connection_series=[
            (float(t), int(c)) for t, c in doc["connection_series"]
        ],
        shaken_at=(
            None if doc["shaken_at"] is None else float(doc["shaken_at"])
        ),
    )


# ----------------------------------------------------------------------
# Peers
# ----------------------------------------------------------------------
def _snapshot_peer(peer: Peer) -> dict:
    return {
        "peer_id": peer.peer_id,
        "bitfield_mask": peer.bitfield.mask,
        "neighbors": sorted(peer.neighbors),
        "partners": sorted(peer.partners),
        "is_seed": peer.is_seed,
        "instrumented": peer.instrumented,
        "stats": _snapshot_stats(peer.stats),
        "seeded_pieces": sorted(peer.seeded_pieces),
        "shaken": peer.shaken,
        "seed_until": _num(peer.seed_until),
        "upload_capacity": _num(peer.upload_capacity),
        # Insertion order preserved on purpose: strict piece priority
        # iterates block_progress in dict order when picking a partial
        # piece to finish.
        "block_progress": [
            [int(piece), int(count)]
            for piece, count in peer.block_progress.items()
        ],
    }


def _restore_peer(doc: dict, num_pieces: int) -> Peer:
    peer = Peer(
        int(doc["peer_id"]),
        num_pieces,
        joined_at=float(doc["stats"]["joined_at"]),
        is_seed=bool(doc["is_seed"]),
        instrumented=bool(doc["instrumented"]),
    )
    peer.bitfield = Bitfield(num_pieces, int(doc["bitfield_mask"]))
    peer.neighbors = {int(n) for n in doc["neighbors"]}
    peer.partners = {int(p) for p in doc["partners"]}
    peer.stats = _restore_stats(doc["stats"])
    peer.seeded_pieces = {int(p) for p in doc["seeded_pieces"]}
    peer.shaken = bool(doc["shaken"])
    peer.seed_until = (
        None if doc["seed_until"] is None else float(doc["seed_until"])
    )
    peer.upload_capacity = (
        None if doc["upload_capacity"] is None else int(doc["upload_capacity"])
    )
    peer.block_progress = {
        int(piece): int(count) for piece, count in doc["block_progress"]
    }
    return peer


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def _snapshot_metrics(metrics: MetricsCollector) -> dict:
    return {
        "max_conns": metrics.max_conns,
        "entropy_every": metrics.entropy_every,
        "entropy_includes_seeds": metrics.entropy_includes_seeds,
        "occupancy_warmup": metrics.occupancy_warmup,
        "occupancy_scope": metrics.occupancy_scope,
        "population_series": _triples(metrics.population_series),
        "entropy_series": _pairs(metrics.entropy_series),
        "aborted": _pairs(metrics.aborted),
        "rounds_observed": metrics.rounds_observed,
        "occupancy_sums": [float(v) for v in metrics._occupancy_sums],
        "occupancy_rounds": metrics._occupancy_rounds,
        "expected_total_rounds": metrics._expected_total_rounds,
        "completed": [
            {
                "peer_id": c.peer_id,
                "joined_at": _num(c.joined_at),
                "completed_at": _num(c.completed_at),
                "stats": _snapshot_stats(c.stats),
                "shaken": c.shaken,
                "upload_capacity": _num(c.upload_capacity),
            }
            for c in metrics.completed
        ],
    }


def _restore_metrics(doc: dict) -> MetricsCollector:
    metrics = MetricsCollector(
        int(doc["max_conns"]),
        entropy_every=int(doc["entropy_every"]),
        entropy_includes_seeds=bool(doc["entropy_includes_seeds"]),
        occupancy_warmup=float(doc["occupancy_warmup"]),
        occupancy_scope=str(doc["occupancy_scope"]),
    )
    metrics.population_series = [
        (float(t), int(le), int(se)) for t, le, se in doc["population_series"]
    ]
    metrics.entropy_series = [
        (float(t), float(e)) for t, e in doc["entropy_series"]
    ]
    metrics.aborted = [(float(t), int(n)) for t, n in doc["aborted"]]
    metrics.rounds_observed = int(doc["rounds_observed"])
    metrics._occupancy_sums = np.asarray(
        doc["occupancy_sums"], dtype=np.float64
    )
    metrics._occupancy_rounds = int(doc["occupancy_rounds"])
    metrics._expected_total_rounds = (
        None
        if doc["expected_total_rounds"] is None
        else int(doc["expected_total_rounds"])
    )
    metrics.completed = [
        CompletedDownload(
            peer_id=int(c["peer_id"]),
            joined_at=float(c["joined_at"]),
            completed_at=float(c["completed_at"]),
            stats=_restore_stats(c["stats"]),
            shaken=bool(c["shaken"]),
            upload_capacity=(
                None
                if c["upload_capacity"] is None
                else int(c["upload_capacity"])
            ),
        )
        for c in doc["completed"]
    ]
    return metrics


# ----------------------------------------------------------------------
# Swarm (top level)
# ----------------------------------------------------------------------
def snapshot_swarm(swarm: "Swarm") -> dict:
    """Full snapshot document for ``swarm`` (schema v1).

    Must be called at a round boundary (between engine events); the
    swarm's ``_maybe_checkpoint`` hook guarantees this.
    """
    tracker = swarm.tracker
    alive = [_snapshot_peer(peer) for peer in tracker.peers()]
    alive_ids = {doc["peer_id"] for doc in alive}
    # Instrumented peers survive departure (their stats feed the result
    # bundle); departed ones exist only on the swarm's list.
    departed = [
        _snapshot_peer(peer)
        for peer in swarm.instrumented_peers
        if peer.peer_id not in alive_ids
    ]
    return {
        "schema_version": SCHEMA_VERSION,
        "config": swarm.config.to_dict(),
        "swarm": {
            "rng": _sanitize_rng_state(swarm.rng.bit_generator.state),
            "rounds": swarm._rounds,
            "setup_done": swarm._setup_done,
            "seed_upload_count": swarm.seed_upload_count,
            "checkpoints_written": swarm.checkpoints_written,
            "piece_counts": [int(c) for c in swarm.piece_counts],
            "connection_stats": {
                "survived": swarm.connection_stats.survived,
                "dropped": swarm.connection_stats.dropped,
                "attempts": swarm.connection_stats.attempts,
                "formed": swarm.connection_stats.formed,
            },
            "instrument_first": swarm.instrument_first,
            "instrumented_avoid_seeds": swarm.instrumented_avoid_seeds,
            "instrumented_start_empty": swarm.instrumented_start_empty,
            "rarity_view": swarm.rarity_view,
            # List order matters: _spawn_peer appends in instrumentation
            # order and the result bundle exposes the list as-is.
            "instrumented_ids": [
                p.peer_id for p in swarm.instrumented_peers
            ],
        },
        "engine": swarm.engine.snapshot_state(),
        "tracker": {
            "next_id": tracker._next_id,
            "bootstrap_trapped": sorted(tracker._bootstrap_trapped),
            "population_log": _triples(tracker.population_log),
        },
        "peers": alive,
        "departed_instrumented": departed,
        "metrics": _snapshot_metrics(swarm.metrics),
        "potential": {
            "cache": [
                [pid, list(members)]
                for pid, members in sorted(swarm._potential_sets._cache.items())
            ],
            "dirty": sorted(swarm._potential_sets._dirty),
        },
        "faults": (
            None
            if swarm.fault_injector is None
            else swarm.fault_injector.snapshot_state()
        ),
    }


def _sanitize_rng_state(state: dict) -> dict:
    """numpy's PCG64 state dict, with any numpy scalars collapsed."""
    return {
        "bit_generator": state["bit_generator"],
        "state": {key: _num(value) for key, value in state["state"].items()},
        "has_uint32": _num(state["has_uint32"]),
        "uinteger": _num(state["uinteger"]),
    }


def restore_swarm(document: dict, **swarm_kwargs) -> "Swarm":
    """Rebuild a ready-to-continue :class:`Swarm` from a snapshot document.

    The returned swarm has ``_setup_done=True``; calling :meth:`run`
    continues from the snapshot round and produces a result whose
    fingerprint matches the uninterrupted run's.

    ``swarm_kwargs`` may carry run-control options that are *not* part
    of the snapshot (``profile``, ``checkpoint_path``,
    ``checkpoint_every``) — simulation-defining options come from the
    document itself.
    """
    from repro.faults.plan import FaultPlan
    from repro.sim.swarm import Swarm

    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CheckpointError(
            f"snapshot schema version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    try:
        config = SimConfig.from_dict(document["config"])
        sw = document["swarm"]
        faults_doc = document["faults"]
        plan = (
            None
            if faults_doc is None
            else FaultPlan.from_dict(faults_doc["plan"])
        )
        metrics = _restore_metrics(document["metrics"])

        swarm = Swarm(
            config,
            instrument_first=int(sw["instrument_first"]),
            instrumented_avoid_seeds=bool(sw["instrumented_avoid_seeds"]),
            instrumented_start_empty=bool(sw["instrumented_start_empty"]),
            rarity_view=str(sw["rarity_view"]),
            metrics=metrics,
            faults=plan,
            **swarm_kwargs,
        )

        # RNG streams first: the constructor performs no draws, so the
        # restored position is exactly the snapshot position.
        swarm.rng.bit_generator.state = sw["rng"]
        if swarm.fault_injector is not None:
            swarm.fault_injector.restore_state(faults_doc)

        swarm.engine.restore_state(document["engine"])

        # Tracker registry: insert in ascending-id order (the snapshot
        # stores peers that way) so announce candidate iteration matches
        # the uninterrupted run's insertion-ordered dict.
        tracker = swarm.tracker
        tracker._peers = {}
        for peer_doc in document["peers"]:
            peer = _restore_peer(peer_doc, config.num_pieces)
            tracker._peers[peer.peer_id] = peer
        tracker._next_id = int(document["tracker"]["next_id"])
        tracker._bootstrap_trapped = {
            int(pid) for pid in document["tracker"]["bootstrap_trapped"]
        }
        tracker.population_log = [
            (float(t), int(le), int(se))
            for t, le, se in document["tracker"]["population_log"]
        ]

        # Instrumented list: alive entries must alias the tracker's peer
        # objects (they keep accumulating stats); departed ones are
        # rebuilt from their archived snapshots, preserving list order.
        departed = {
            doc["peer_id"]: doc for doc in document["departed_instrumented"]
        }
        swarm.instrumented_peers = [
            tracker._peers[pid]
            if pid in tracker._peers
            else _restore_peer(departed[pid], config.num_pieces)
            for pid in (int(p) for p in sw["instrumented_ids"])
        ]

        swarm.piece_counts = np.asarray(sw["piece_counts"], dtype=np.int64)
        # Mutate the cache containers IN PLACE: the tracker's neighbor
        # listener is the bound method ``_dirty.add`` of the original
        # set object — rebinding the attribute to a fresh set would
        # orphan the listener and silently drop invalidations.
        cache = swarm._potential_sets._cache
        cache.clear()
        cache.update(
            (int(pid), [int(m) for m in members])
            for pid, members in document["potential"]["cache"]
        )
        dirty = swarm._potential_sets._dirty
        dirty.clear()
        dirty.update(int(pid) for pid in document["potential"]["dirty"])
        stats = sw["connection_stats"]
        swarm.connection_stats.survived = int(stats["survived"])
        swarm.connection_stats.dropped = int(stats["dropped"])
        swarm.connection_stats.attempts = int(stats["attempts"])
        swarm.connection_stats.formed = int(stats["formed"])
        swarm.seed_upload_count = int(sw["seed_upload_count"])
        swarm.checkpoints_written = int(sw["checkpoints_written"])
        swarm._rounds = int(sw["rounds"])
        swarm._setup_done = bool(sw["setup_done"])
        swarm.resumed_from_round = swarm._rounds
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"snapshot document is structurally invalid: {exc!r}"
        )
    return swarm
