"""On-disk checkpoint container: header, CRC, atomic write-rename.

A checkpoint file is::

    MAGIC (8 bytes) | format version (u32 LE) | payload length (u64 LE)
    | CRC32 of payload (u32 LE) | payload (canonical JSON, UTF-8)

The payload is the snapshot document produced by
:mod:`repro.checkpoint.schema` serialized as canonical JSON
(``sort_keys=True``, compact separators).  Canonical JSON keeps the
format auditable (a golden fixture diff is human-readable) and makes
byte-identical re-serialization possible, which the golden-format tests
rely on.  All order-sensitive state lives in JSON *arrays*, never in
object key order, so key sorting is loss-free.

Writes are crash-safe: the payload is written to a same-directory
temporary file, flushed and fsynced, then moved into place with
:func:`os.replace` (atomic on POSIX).  A reader therefore sees either
the previous complete checkpoint or the new complete checkpoint, never
a torn file — the invariant that lets a SIGKILLed sweep resume from its
latest snapshot no matter when the kill landed.

Loads are paranoid: magic, version, length, and CRC are validated
before the JSON is parsed, and every failure raises
:class:`~repro.errors.CheckpointError` with a reason — silent
acceptance of a truncated or bit-rotted snapshot would quietly fork the
replayed trajectory, which is exactly what this subsystem exists to
prevent.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Union

from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CONTAINER_VERSION",
    "dumps_payload",
    "write_checkpoint",
    "read_checkpoint",
]

#: File magic; the trailing byte leaves room for a container redesign.
CHECKPOINT_MAGIC = b"RBTCKPT\x01"

#: Container-format version (independent of the snapshot schema version
#: inside the payload; see ``repro.checkpoint.schema.SCHEMA_VERSION``).
CONTAINER_VERSION = 1

_HEADER = struct.Struct("<8sIQI")


def dumps_payload(document: dict) -> bytes:
    """Canonical JSON bytes for a snapshot document."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def write_checkpoint(document: dict, path: Union[str, Path]) -> int:
    """Atomically write ``document`` to ``path``; returns bytes written.

    The temporary file lives in the target directory (same filesystem,
    so the final :func:`os.replace` is atomic) and is suffixed with the
    writer's PID so concurrent writers of *different* checkpoints never
    collide.
    """
    path = Path(path)
    payload = dumps_payload(document)
    header = _HEADER.pack(
        CHECKPOINT_MAGIC, CONTAINER_VERSION, len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():  # a failed write leaves no debris behind
            tmp_path.unlink()
    return _HEADER.size + len(payload)


def read_checkpoint(path: Union[str, Path]) -> dict:
    """Load and validate a checkpoint file.

    Raises:
        CheckpointError: missing file, bad magic, unsupported container
            version, truncation, trailing garbage, CRC mismatch, or
            unparseable payload.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint file {path} does not exist")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")

    if len(raw) < _HEADER.size:
        raise CheckpointError(
            f"checkpoint {path} is truncated: {len(raw)} bytes is smaller "
            f"than the {_HEADER.size}-byte header"
        )
    magic, version, length, crc = _HEADER.unpack_from(raw)
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(
            f"checkpoint {path} has bad magic {magic!r} (not a repro-bt "
            f"checkpoint?)"
        )
    if version != CONTAINER_VERSION:
        raise CheckpointError(
            f"checkpoint {path} uses container version {version}; this "
            f"build reads version {CONTAINER_VERSION}"
        )
    payload = raw[_HEADER.size:]
    if len(payload) != length:
        raise CheckpointError(
            f"checkpoint {path} is corrupt: header promises {length} "
            f"payload bytes, file carries {len(payload)}"
        )
    actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
    if actual_crc != crc:
        raise CheckpointError(
            f"checkpoint {path} failed its CRC check "
            f"(stored {crc:#010x}, computed {actual_crc:#010x})"
        )
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path} payload is not valid JSON despite a "
            f"passing CRC: {exc}"
        )
    if not isinstance(document, dict):
        raise CheckpointError(
            f"checkpoint {path} payload must be a JSON object, "
            f"got {type(document).__name__}"
        )
    return document
