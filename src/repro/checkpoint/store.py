"""Checkpoint directories and the resume-or-run entry point.

:class:`CheckpointStore` maps stable task keys to ``.ckpt`` files in a
directory.  Keys are chosen by the *caller* (the runtime uses
``"{batch}-{index}"``), so a relaunched process — even after SIGKILL —
derives the same filename for the same task and finds its latest
snapshot without any registry or manifest.

:func:`run_swarm_with_checkpoints` is the single code path experiment
functions use: given a checkpoint path, it resumes when a valid
snapshot exists and starts fresh (writing snapshots as it goes)
otherwise.  Experiment task functions stay oblivious to which case
occurred beyond the result's ``resumed_from_round`` field.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.checkpoint.format import read_checkpoint
from repro.checkpoint.schema import restore_swarm
from repro.errors import CheckpointError
from repro.sim.config import SimConfig

__all__ = ["CheckpointStore", "run_swarm_with_checkpoints"]

_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Filename suffix for checkpoint files in a store directory.
CKPT_SUFFIX = ".ckpt"


class CheckpointStore:
    """A directory of checkpoints addressed by stable task keys."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        """The checkpoint file for ``key`` (stable across processes)."""
        if not _KEY_RE.match(key):
            raise CheckpointError(
                f"invalid checkpoint key {key!r}: keys must be non-empty "
                f"and use only letters, digits, '.', '_', '-'"
            )
        return self.directory / f"{key}{CKPT_SUFFIX}"

    def exists(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        """Keys of every checkpoint currently in the directory."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob(f"*{CKPT_SUFFIX}")):
            yield path.name[: -len(CKPT_SUFFIX)]

    def clear(self) -> int:
        """Delete every checkpoint (fresh-start semantics); returns count.

        Stray ``.tmp.<pid>`` files from killed writers are swept too.
        """
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob(f"*{CKPT_SUFFIX}"):
            path.unlink()
            removed += 1
        for path in self.directory.glob(f"*{CKPT_SUFFIX}.tmp.*"):
            path.unlink()
        return removed


def run_swarm_with_checkpoints(
    config: SimConfig,
    *,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 0,
    **swarm_kwargs,
):
    """Run (or resume) a swarm with periodic round-boundary snapshots.

    When ``checkpoint_path`` names an existing file, the run resumes
    from that snapshot — the simulation-defining options embedded in it
    win over ``config``/``swarm_kwargs``, which is what makes a retried
    task continue the *original* trajectory rather than start a subtly
    different one.  Otherwise a fresh swarm runs, writing a snapshot
    every ``checkpoint_every`` rounds.

    A corrupt or truncated checkpoint (a crash can never cause one — the
    writer is atomic — but disks happen) raises
    :class:`~repro.errors.CheckpointError` rather than silently
    restarting, so callers decide whether to clear and rerun.

    Returns:
        The :class:`~repro.sim.swarm.SwarmResult`; inspect
        ``result.resumed_from_round`` to learn which case ran.
    """
    from repro.sim.swarm import Swarm

    if checkpoint_path is not None and Path(checkpoint_path).is_file():
        document = read_checkpoint(checkpoint_path)
        # Only run-control options pass through on resume; everything
        # simulation-defining (metrics, faults, instrumentation) comes
        # from the snapshot — a resumed run must continue the original
        # trajectory, not a freshly-parameterised one.  A sharded
        # snapshot additionally honours ``shards`` (elastic re-sharding
        # repartitions the checkpoint onto the new worker count).
        allowed = (
            ("profile", "shards")
            if document.get("backend") == "sharded"
            else ("profile",)
        )
        control = {
            key: value
            for key, value in swarm_kwargs.items()
            if key in allowed
        }
        swarm = restore_swarm(
            document,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            **control,
        )
        if swarm.config != config:
            raise CheckpointError(
                f"checkpoint {checkpoint_path} was taken for a different "
                f"configuration; refusing to resume a mismatched run"
            )
        return swarm.run()

    swarm = Swarm(
        config,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        **swarm_kwargs,
    )
    return swarm.run()
