"""Deterministic checkpoint/resume for swarm simulations.

The subsystem has four layers (see ``docs/CHECKPOINT.md``):

* :mod:`repro.checkpoint.format` — the on-disk container (magic,
  version, CRC32, atomic write-rename);
* :mod:`repro.checkpoint.schema` — snapshot schema v1: full simulation
  state at a round boundary (RNG streams, engine queue, peers, tracker,
  potential-set cache, metrics, fault injector);
* :mod:`repro.checkpoint.store` — checkpoint directories keyed by
  stable task names, plus the resume-or-run entry point experiment
  functions call;
* :mod:`repro.checkpoint.fingerprint` — the SHA-256 result fingerprint
  the replay-equivalence guarantee is stated in.

The guarantee: a run resumed from *any* round-boundary snapshot yields
a :class:`~repro.sim.swarm.SwarmResult` whose fingerprint equals the
uninterrupted run's, with or without an active fault plan.
"""

from repro.checkpoint.fingerprint import result_fingerprint, result_summary
from repro.checkpoint.format import (
    CHECKPOINT_MAGIC,
    CONTAINER_VERSION,
    read_checkpoint,
    write_checkpoint,
)
from repro.checkpoint.schema import (
    SCHEMA_VERSION,
    restore_swarm,
    snapshot_swarm,
)
from repro.checkpoint.store import CheckpointStore, run_swarm_with_checkpoints

__all__ = [
    "CHECKPOINT_MAGIC",
    "CONTAINER_VERSION",
    "SCHEMA_VERSION",
    "CheckpointStore",
    "read_checkpoint",
    "restore_swarm",
    "result_fingerprint",
    "result_summary",
    "run_swarm_with_checkpoints",
    "snapshot_swarm",
    "write_checkpoint",
]
