"""Deterministic fingerprints over :class:`~repro.sim.swarm.SwarmResult`.

The replay-equivalence guarantee is stated in terms of this hash: a run
resumed from any round-boundary snapshot must produce the *same
fingerprint* as the uninterrupted run.  The fingerprint covers every
simulation-determined output — series, counters, per-peer stats — and
deliberately excludes everything wall-clock- or resume-dependent
(``wall_time``, ``round_profile``, ``resumed_from_round``,
``checkpoints_written``), which legitimately differ between an
interrupted and an uninterrupted execution of the *same* trajectory.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.peer import PeerStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.swarm import SwarmResult

__all__ = ["result_summary", "result_fingerprint"]


def _num(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _seq(series) -> list:
    return [[_num(x) for x in row] for row in series]


def _stats_summary(stats: PeerStats) -> dict:
    return {
        "joined_at": _num(stats.joined_at),
        "completed_at": _num(stats.completed_at),
        "piece_times": [_num(t) for t in stats.piece_times],
        "piece_log": _seq(stats.piece_log),
        "potential_series": _seq(stats.potential_series),
        "connection_series": _seq(stats.connection_series),
        "shaken_at": _num(stats.shaken_at),
    }


def result_summary(result: "SwarmResult") -> dict:
    """Canonical JSON-ready summary of every deterministic output."""
    metrics = result.metrics
    return {
        "config": result.config.to_dict(),
        "total_rounds": result.total_rounds,
        "final_leechers": result.final_leechers,
        "final_seeds": result.final_seeds,
        "tracker_population_log": _seq(result.tracker_population_log),
        "connection_stats": {
            "survived": result.connection_stats.survived,
            "dropped": result.connection_stats.dropped,
            "attempts": result.connection_stats.attempts,
            "formed": result.connection_stats.formed,
        },
        "seed_upload_count": result.seed_upload_count,
        "events_processed": result.events_processed,
        "metrics": {
            "population_series": _seq(metrics.population_series),
            "entropy_series": _seq(metrics.entropy_series),
            "aborted": _seq(metrics.aborted),
            "rounds_observed": metrics.rounds_observed,
            "occupancy_sums": [float(v) for v in metrics._occupancy_sums],
            "occupancy_rounds": metrics._occupancy_rounds,
            "completed": [
                {
                    "peer_id": c.peer_id,
                    "joined_at": _num(c.joined_at),
                    "completed_at": _num(c.completed_at),
                    "shaken": c.shaken,
                    "upload_capacity": _num(c.upload_capacity),
                    "stats": _stats_summary(c.stats),
                }
                for c in metrics.completed
            ],
        },
        "instrumented": [
            {"peer_id": p.peer_id, "stats": _stats_summary(p.stats)}
            for p in result.instrumented
        ],
        "fault_stats": (
            None if result.fault_stats is None else result.fault_stats.to_dict()
        ),
    }


def result_fingerprint(result: "SwarmResult") -> str:
    """SHA-256 over the canonical JSON encoding of :func:`result_summary`.

    Python's ``repr``-based float serialization round-trips exactly, so
    two results are fingerprint-equal iff every covered value is
    bit-equal — the equivalence the replay tests assert.
    """
    payload = json.dumps(
        result_summary(result),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
