"""Shared JSON serialization helper.

Lives in its own dependency-free module so both the experiment result
layer (:mod:`repro.experiments.result`) and the query API
(:mod:`repro.api`) / service can use it without import cycles.
"""

from __future__ import annotations

import numpy as np

__all__ = ["to_jsonable"]


def to_jsonable(value):
    """Recursively convert a result payload into JSON-ready builtins.

    Handles numpy scalars and arrays (NaN becomes ``None``), mappings
    (keys stringified), sequences, and objects exposing ``to_dict``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if np.isfinite(value) else None
    if isinstance(value, np.generic):
        return to_jsonable(value.item())
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if hasattr(value, "to_dict"):
        return value.to_dict()
    return repr(value)
