"""Runnable stability experiments (paper Figures 3/4(b) and 3/4(c)).

The paper's setup: start the swarm "from an initial state with a high
skewness", drive it with a Poisson arrival stream, and watch two
series — the population (number of peers in the system) and the entropy
``E``.  With too few pieces (``B = 3``) the system never recovers: the
entropy collapses toward 0 and the population grows without bound.
With enough pieces (``B = 10``) rarest-first repairs the skew: entropy
drifts back to 1 and the population stabilises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm, SwarmResult

__all__ = [
    "StabilityRun",
    "run_stability_experiment",
    "run_stability_sweep",
    "stability_config",
]


@dataclass
class StabilityRun:
    """Result of one stability run.

    Attributes:
        result: the raw :class:`SwarmResult`.
        times / population / entropy: aligned series (population counts
            leechers + seeds, i.e. "# of peers" as the paper plots it).
        diverged: population at the horizon exceeds ``divergence_factor``
            times the initial population.
        entropy_recovered: the mean entropy over the final quarter of
            the run exceeds ``recovery_level``.
    """

    result: SwarmResult
    times: np.ndarray
    population: np.ndarray
    entropy: np.ndarray
    diverged: bool
    entropy_recovered: bool

    def final_entropy(self) -> float:
        return float(self.entropy[-1]) if self.entropy.size else float("nan")

    def final_population(self) -> int:
        return int(self.population[-1]) if self.population.size else 0


def stability_config(
    num_pieces: int,
    *,
    arrival_rate: float = 20.0,
    initial_leechers: int = 400,
    max_conns: int = 4,
    ns_size: int = 40,
    skew_factor: float = 0.05,
    seed_upload_slots: int = 2,
    max_time: float = 150.0,
    seed: int = 0,
) -> SimConfig:
    """The canonical high-skew stability configuration.

    A large initial population holds every piece with probability 0.5
    except the first (``skewed_pieces = 1``) which is held with
    probability ``0.5 * skew_factor`` — the high-skew start.  A single
    origin seed with limited upload capacity is the only reliable source
    of the rare piece, exactly the regime where ``B`` decides the
    outcome: with ``B = 3`` a peer that acquires the rare piece departs
    almost immediately (no trading window to replicate it), so the rare
    piece's service rate stays pinned at the origin seed's capacity and
    the arrival stream piles up; with ``B = 10`` holders keep uploading
    it rarest-first for several rounds, replication compounds, and the
    skew heals.

    ``random_first_cutoff`` is set to 1: the default of 4 random-first
    pieces is a rounding error for real torrents (B in the hundreds)
    but would disable rarest-first for most of a 3- or 10-piece
    download.
    """
    return SimConfig(
        num_pieces=num_pieces,
        max_conns=max_conns,
        ns_size=ns_size,
        arrival_process="poisson",
        arrival_rate=arrival_rate,
        initial_leechers=initial_leechers,
        initial_distribution="skewed",
        initial_fill=0.5,
        skewed_pieces=1,
        skew_factor=skew_factor,
        num_seeds=1,
        seed_upload_slots=seed_upload_slots,
        piece_selection="rarest",
        optimistic_targets="empty",
        random_first_cutoff=1,
        max_time=max_time,
        seed=seed,
    )


def run_stability_experiment(
    config: SimConfig,
    *,
    divergence_factor: float = 2.0,
    recovery_level: float = 0.5,
    entropy_every: int = 2,
    backend: str = "object",
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
) -> StabilityRun:
    """Run one stability experiment and classify the outcome.

    Args:
        config: typically from :func:`stability_config`.
        divergence_factor: population growth ratio that counts as
            divergence.
        recovery_level: entropy level (over the final quarter) that
            counts as recovered.
        entropy_every: entropy sampling stride in rounds (entropy costs
            O(N * B) per sample).
        checkpoint_path / checkpoint_every: when set (the executor
            injects them for checkpointable tasks), the swarm snapshots
            every ``checkpoint_every`` rounds and resumes from an
            existing snapshot instead of recomputing finished rounds —
            with a bit-identical result either way.
    """
    if divergence_factor <= 1.0:
        raise ParameterError(
            f"divergence_factor must be > 1, got {divergence_factor}"
        )
    if not 0.0 < recovery_level <= 1.0:
        raise ParameterError(
            f"recovery_level must be in (0, 1], got {recovery_level}"
        )
    if checkpoint_path is not None:
        from repro.checkpoint.store import run_swarm_with_checkpoints

        result = run_swarm_with_checkpoints(
            config,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            metrics=MetricsCollector(
                config.max_conns,
                entropy_every=entropy_every,
                entropy_includes_seeds=True,
            ),
            backend=backend,
        )
        metrics = result.metrics
    else:
        metrics = MetricsCollector(
            config.max_conns,
            entropy_every=entropy_every,
            entropy_includes_seeds=True,
        )
        swarm = Swarm(config, metrics=metrics, backend=backend)
        result = swarm.run()

    times, leech, seeds = metrics.population_arrays()
    population = leech + seeds
    e_times, e_values = metrics.entropy_arrays()
    # Align entropy onto the population timeline (it is sampled every
    # ``entropy_every`` rounds): step interpolation.
    if e_times.size and times.size:
        idx = np.searchsorted(e_times, times, side="right") - 1
        idx = np.clip(idx, 0, e_values.size - 1)
        entropy_series = e_values[idx]
    else:
        entropy_series = np.array([])

    initial_pop = config.initial_leechers + config.num_seeds
    final_pop = int(population[-1]) if population.size else 0
    diverged = final_pop > divergence_factor * max(initial_pop, 1)

    if entropy_series.size:
        tail = entropy_series[-max(entropy_series.size // 4, 1):]
        entropy_recovered = float(tail.mean()) >= recovery_level
    else:
        entropy_recovered = False

    return StabilityRun(
        result=result,
        times=times,
        population=population,
        entropy=entropy_series,
        diverged=diverged,
        entropy_recovered=entropy_recovered,
    )


def run_stability_sweep(
    piece_counts: Sequence[int],
    *,
    arrival_rate: float = 20.0,
    initial_leechers: int = 400,
    max_time: float = 150.0,
    seed: int = 0,
    entropy_every: int = 2,
    workers: int = 1,
    backend: str = "object",
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
) -> Tuple[Dict[int, StabilityRun], "object"]:
    """Run one stability experiment per ``B``, fanned over the executor.

    The CLI ``stability`` command and the B-sweep studies go through
    this helper; each per-``B`` run is an independent task, so a sweep
    parallelises across worker processes without changing results.

    With a ``checkpoint_dir``, each per-``B`` task snapshots every
    ``checkpoint_every`` rounds under a stable key (``stability-B{B}``),
    and a relaunched sweep resumes every interrupted task from its
    latest snapshot — bit-identical to the uninterrupted sweep.

    Returns:
        ``(runs, telemetry)`` — per-``B`` :class:`StabilityRun` plus the
        executor's :class:`~repro.runtime.telemetry.Telemetry`.
    """
    from repro.runtime.executor import ExperimentExecutor, TaskSpec

    if not piece_counts:
        raise ParameterError("piece_counts must be non-empty")
    configs = [
        stability_config(
            num_pieces,
            arrival_rate=arrival_rate,
            initial_leechers=initial_leechers,
            max_time=max_time,
            seed=seed + offset,
        )
        for offset, num_pieces in enumerate(piece_counts)
    ]
    interval = checkpoint_every if checkpoint_dir is not None else 0
    executor = ExperimentExecutor(workers=workers, checkpoint_dir=checkpoint_dir)
    executor.telemetry.backend = backend
    outcomes = executor.run(
        [
            TaskSpec(
                run_stability_experiment,
                (config,),
                {"entropy_every": entropy_every, "backend": backend},
                checkpoint_interval=interval,
                checkpoint_key=f"stability-B{num_pieces}",
            )
            for config, num_pieces in zip(configs, piece_counts)
        ]
    )
    runs: Dict[int, StabilityRun] = {}
    for num_pieces, run in zip(piece_counts, outcomes):
        runs[num_pieces] = run
        executor.record_events(run.result.events_processed)
    return runs, executor.telemetry
