"""Stability analysis of the protocol (paper Section 6).

Stability is defined through the swarm **entropy**::

    E = min(d_1, ..., d_B) / max(d_1, ..., d_B)

where ``d_i`` is the replication degree of piece ``i``.  The system is
stable when the long-run behaviour drives ``E`` to 1; if ``E`` goes to
0, piece skewness stalls downloads, arrivals outpace departures, and
the population diverges.  The paper shows the number of pieces ``B``
and the arrival rate are the deciding parameters: with a high-skew
start, ``B = 3`` diverges while ``B = 10`` recovers (Figures 3/4(b,c)).

Note:
    :mod:`repro.stability.experiments` (the simulator-backed runners)
    is exposed lazily — the metric modules here are dependencies of the
    simulator, so the runners cannot be imported eagerly without a
    cycle.  ``from repro.stability import run_stability_experiment``
    works as usual.
"""

from repro.stability.drift import (
    PhaseDriftAnalysis,
    alpha_under_skew,
    entropy_drift_summary,
    phase_drift_analysis,
)
from repro.stability.entropy import (
    entropy,
    entropy_of_swarm,
    replication_degrees,
)

__all__ = [
    "entropy",
    "entropy_of_swarm",
    "replication_degrees",
    "PhaseDriftAnalysis",
    "alpha_under_skew",
    "entropy_drift_summary",
    "phase_drift_analysis",
    "StabilityRun",
    "run_stability_experiment",
    "run_stability_sweep",
    "stability_config",
    "BoundaryPoint",
    "PhaseBoundary",
    "critical_piece_count",
    "phase_boundary",
]

_LAZY_EXPERIMENTS = {
    "StabilityRun",
    "run_stability_experiment",
    "run_stability_sweep",
    "stability_config",
}
_LAZY_CRITICAL = {
    "BoundaryPoint",
    "PhaseBoundary",
    "critical_piece_count",
    "phase_boundary",
}


def __getattr__(name: str):
    if name in _LAZY_EXPERIMENTS:
        from repro.stability import experiments

        return getattr(experiments, name)
    if name in _LAZY_CRITICAL:
        from repro.stability import critical

        return getattr(critical, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
