"""Critical piece count: the stability phase boundary.

The paper's headline stability finding is a *boundary*: "the stability
of [the] BitTorrent protocol depends heavily on the number of pieces a
file is divided into and the arrival rate of clients".  This module
locates that boundary — the minimal ``B`` at which the high-skew swarm
recovers instead of diverging — as a function of the arrival rate,
both from short simulation runs (bisection over ``B``) and from the
first-order drift model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.reporting import format_table
from repro.errors import ParameterError
from repro.stability.drift import phase_drift_analysis
from repro.stability.experiments import (
    run_stability_experiment,
    stability_config,
)

__all__ = ["BoundaryPoint", "PhaseBoundary", "critical_piece_count", "phase_boundary"]


@dataclass(frozen=True)
class BoundaryPoint:
    """The critical ``B`` at one arrival rate.

    Attributes:
        arrival_rate: the offered load (peers per round).
        critical_b_sim: minimal stable ``B`` found by simulation.
        critical_b_drift: minimal ``B`` the drift model calls stable.
    """

    arrival_rate: float
    critical_b_sim: int
    critical_b_drift: int


@dataclass
class PhaseBoundary:
    """The stability boundary over a sweep of arrival rates."""

    points: List[BoundaryPoint]

    def format(self) -> str:
        return "Stability phase boundary: critical B vs arrival rate\n" + \
            format_table(
                ["arrival rate", "critical B (simulation)",
                 "critical B (drift model)"],
                [[p.arrival_rate, p.critical_b_sim, p.critical_b_drift]
                 for p in self.points],
            )


def _is_stable(
    num_pieces: int,
    arrival_rate: float,
    *,
    initial_leechers: int,
    max_time: float,
    seed: int,
) -> bool:
    config = stability_config(
        num_pieces,
        arrival_rate=arrival_rate,
        initial_leechers=initial_leechers,
        max_time=max_time,
        seed=seed,
    )
    run = run_stability_experiment(config, entropy_every=8)
    return not run.diverged


def critical_piece_count(
    arrival_rate: float,
    *,
    b_range: tuple = (2, 32),
    initial_leechers: int = 150,
    max_time: float = 80.0,
    seed: int = 0,
) -> int:
    """Minimal ``B`` in ``b_range`` at which the swarm does not diverge.

    Bisection over ``B`` assuming monotonicity (more pieces -> more
    trading-phase repair time, the paper's Section-6 argument).
    Returns ``b_range[1] + 1`` if even the largest ``B`` diverges.

    Raises:
        ParameterError: for an invalid range or negative arrival rate.
    """
    low, high = b_range
    if low < 2 or high <= low:
        raise ParameterError(f"need 2 <= low < high, got {b_range}")
    if arrival_rate < 0:
        raise ParameterError(f"arrival_rate must be >= 0, got {arrival_rate}")

    if _is_stable(low, arrival_rate, initial_leechers=initial_leechers,
                  max_time=max_time, seed=seed):
        return low
    if not _is_stable(high, arrival_rate, initial_leechers=initial_leechers,
                      max_time=max_time, seed=seed):
        return high + 1
    while high - low > 1:
        mid = (low + high) // 2
        if _is_stable(mid, arrival_rate, initial_leechers=initial_leechers,
                      max_time=max_time, seed=seed):
            high = mid
        else:
            low = mid
    return high


def _critical_from_drift(arrival_rate: float, *, b_max: int = 64) -> int:
    for num_pieces in range(2, b_max + 1):
        analysis = phase_drift_analysis(num_pieces, 4, arrival_rate)
        if analysis.predicted_stable:
            return num_pieces
    return b_max + 1


def phase_boundary(
    arrival_rates: Sequence[float],
    *,
    initial_leechers: int = 150,
    max_time: float = 80.0,
    seed: int = 0,
) -> PhaseBoundary:
    """The critical ``B`` per arrival rate, simulation next to drift model."""
    if not arrival_rates:
        raise ParameterError("arrival_rates must be non-empty")
    points = []
    for offset, rate in enumerate(arrival_rates):
        points.append(
            BoundaryPoint(
                arrival_rate=rate,
                critical_b_sim=critical_piece_count(
                    rate,
                    initial_leechers=initial_leechers,
                    max_time=max_time,
                    seed=seed + offset,
                ),
                critical_b_drift=_critical_from_drift(rate),
            )
        )
    return PhaseBoundary(points=points)
