"""First-order entropy-drift analysis (paper Section 6).

The paper derives the stability story qualitatively and defers exact
analysis ("a nontrivial problem ... left for future work").  This
module encodes that qualitative story as explicit first-order formulas
so it can be computed, tested, and compared against simulation:

* **Bootstrap phase**: expected sojourn ``1/alpha``; skew (low entropy
  ``E``) lowers ``alpha`` because newly met peers are more likely to
  hold only the over-replicated pieces — modelled as
  ``alpha(E) = alpha * E``-to-first-order.
* **Trading phase**: rarest-first makes holders of the rarest piece
  upload it preferentially, so its replication grows roughly
  geometrically with per-generation factor ``g ~ B / 2`` (a holder
  keeps uploading for the ``~(B/2)/k`` rounds it has left, over ``k``
  connections).  The repair succeeds only if each holder replicates the
  piece more than once before departing, with headroom for the load the
  arrival stream adds — the paper's "when B is too small, peers leave
  the system too quickly".
* **Last download phase**: expected sojourn ``1/gamma``; smaller
  ``gamma`` keeps nearly-complete peers (which hold the rare pieces)
  in the system longer, improving stability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = [
    "PhaseDriftAnalysis",
    "phase_drift_analysis",
    "alpha_under_skew",
    "entropy_drift_summary",
]


def alpha_under_skew(alpha: float, entropy_value: float) -> float:
    """First-order skew correction to the bootstrap parameter.

    "The smaller the entropy E, the smaller the probability alpha
    becomes" — modelled as linear scaling, exact at the endpoints
    (``E = 1``: no skew, nominal ``alpha``; ``E = 0``: the tradable
    piece has effectively vanished from arriving peers).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ParameterError(f"alpha must be in [0, 1], got {alpha}")
    if not 0.0 <= entropy_value <= 1.0:
        raise ParameterError(f"entropy must be in [0, 1], got {entropy_value}")
    return alpha * entropy_value


@dataclass(frozen=True)
class PhaseDriftAnalysis:
    """Outcome of the first-order stability analysis.

    Attributes:
        bootstrap_sojourn: expected rounds stuck in bootstrap (``1/alpha``).
        last_sojourn: expected rounds stuck in the last phase (``1/gamma``).
        trading_rounds: expected rounds spent in the trading phase.
        replication_factor: per-generation growth factor ``g`` of the
            rarest piece's replication under rarest-first.
        required_factor: growth the system must sustain given the
            arrival load.
        predicted_stable: ``replication_factor >= required_factor``.
    """

    bootstrap_sojourn: float
    last_sojourn: float
    trading_rounds: float
    replication_factor: float
    required_factor: float
    predicted_stable: bool


def phase_drift_analysis(
    num_pieces: int,
    max_conns: int,
    arrival_rate: float,
    *,
    alpha: float = 0.1,
    gamma: float = 0.1,
    service_rate: float = 1.0,
    base_required_factor: float = 2.5,
) -> PhaseDriftAnalysis:
    """First-order stability verdict for a parameter set.

    The rarest piece's replication factor per holder generation is
    ``g = k_eff * w(B)`` where ``w(B) ~ (B/2) / k_eff`` is the rounds a
    holder keeps uploading after acquiring the piece — so ``g ~ B / 2``,
    independent of ``k``: exactly the paper's "stability depends heavily
    on the number of pieces".  The required factor grows with the
    offered load ``arrival_rate / service_rate`` (new arrivals compete
    for holders' upload slots with over-replicated pieces).  Being
    first-order, the linear load term tracks the simulated phase
    boundary well at low-to-moderate load and underestimates the
    critical ``B`` at high load, where the origin seed's fixed capacity
    saturates (see :mod:`repro.stability.critical` for the measured
    boundary).

    Args:
        base_required_factor: growth needed at negligible load;
            calibrated so the paper's Figure 3/4(b,c) endpoints (B=3
            diverges, B=10 recovers) are classified correctly.
    """
    if num_pieces < 1:
        raise ParameterError(f"num_pieces must be >= 1, got {num_pieces}")
    if max_conns < 1:
        raise ParameterError(f"max_conns must be >= 1, got {max_conns}")
    if arrival_rate < 0:
        raise ParameterError(f"arrival_rate must be >= 0, got {arrival_rate}")
    if service_rate <= 0:
        raise ParameterError(f"service_rate must be > 0, got {service_rate}")
    if not 0.0 < alpha <= 1.0 or not 0.0 < gamma <= 1.0:
        raise ParameterError("alpha and gamma must be in (0, 1]")

    k_eff = max(min(max_conns, num_pieces - 1), 1)
    trading_rounds = max(num_pieces - 2, 0) / k_eff
    replication_factor = num_pieces / 2.0
    load = arrival_rate / service_rate
    required = base_required_factor * (1.0 + 0.05 * load)
    return PhaseDriftAnalysis(
        bootstrap_sojourn=1.0 / alpha,
        last_sojourn=1.0 / gamma,
        trading_rounds=trading_rounds,
        replication_factor=replication_factor,
        required_factor=required,
        predicted_stable=replication_factor >= required,
    )


def entropy_drift_summary(
    num_pieces: int,
    max_conns: int,
    arrival_rate: float,
    **kwargs,
) -> str:
    """Human-readable verdict used by the CLI and examples."""
    analysis = phase_drift_analysis(num_pieces, max_conns, arrival_rate, **kwargs)
    verdict = "STABLE" if analysis.predicted_stable else "UNSTABLE"
    return (
        f"B={num_pieces} k={max_conns} lambda={arrival_rate}: {verdict} "
        f"(replication factor {analysis.replication_factor:.2f} vs required "
        f"{analysis.required_factor:.2f}; trading rounds "
        f"{analysis.trading_rounds:.2f}, bootstrap sojourn "
        f"{analysis.bootstrap_sojourn:.1f}, last-phase sojourn "
        f"{analysis.last_sojourn:.1f})"
    )
