"""Entropy metric over piece replication degrees (paper Section 6).

``E = min_i d_i / max_i d_i`` measures the skewness of the piece
distribution: 1 means perfectly balanced replication, 0 means at least
one piece is (relatively) vanishing from the system — the condition
under which peers pile up in the last download phase and the swarm
destabilises.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

import numpy as np

from repro.errors import ParameterError
from repro.sim.bitfield import Bitfield

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.tracker import Tracker

__all__ = ["replication_degrees", "entropy", "entropy_of_swarm"]


def replication_degrees(
    bitfields: Iterable[Bitfield], num_pieces: int
) -> np.ndarray:
    """Count, per piece, how many of the given bitfields hold it.

    Returns an integer array ``d`` of length ``num_pieces`` with
    ``d[p]`` = number of holders of piece ``p``.
    """
    if num_pieces < 1:
        raise ParameterError(f"num_pieces must be >= 1, got {num_pieces}")
    degrees = np.zeros(num_pieces, dtype=np.int64)
    for bitfield in bitfields:
        if bitfield.num_pieces != num_pieces:
            raise ParameterError(
                f"bitfield covers {bitfield.num_pieces} pieces, "
                f"expected {num_pieces}"
            )
        if bitfield.is_complete:
            degrees += 1
            continue
        for piece in bitfield.pieces():
            degrees[piece] += 1
    return degrees


def entropy(degrees: np.ndarray) -> float:
    """``E = min(d) / max(d)`` over replication degrees.

    Conventions for degenerate inputs: an empty system (``max(d) == 0``)
    has no skew to speak of and returns 1.0; any piece entirely missing
    while others exist gives exactly 0.0.
    """
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        raise ParameterError("degrees must be non-empty")
    if (degrees < 0).any():
        raise ParameterError("replication degrees cannot be negative")
    maximum = int(degrees.max())
    if maximum == 0:
        return 1.0
    return float(degrees.min() / maximum)


def entropy_of_swarm(tracker: "Tracker", *, include_seeds: bool = True) -> float:
    """Current swarm entropy from the tracker's registry.

    Args:
        include_seeds: count seeds' (complete) bitfields in the
            replication degrees — the paper's "replication degree of
            the i-th piece in the system" counts every peer present.
    """
    peers = tracker.peers() if include_seeds else tracker.leechers()
    bitfields = [p.bitfield for p in peers]
    if not bitfields:
        return 1.0
    num_pieces = bitfields[0].num_pieces
    return entropy(replication_degrees(bitfields, num_pieces))
