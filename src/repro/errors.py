"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch package failures with a single
``except ReproError`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError, ValueError):
    """A model or simulation parameter is out of its valid range."""


class DistributionError(ReproError, ValueError):
    """A probability distribution is malformed (wrong support, sum != 1)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class TraceError(ReproError, ValueError):
    """A download trace is malformed or fails schema validation."""


class CheckpointError(ReproError, RuntimeError):
    """A simulation checkpoint is corrupt, truncated, or incompatible."""
