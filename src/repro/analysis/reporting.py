"""Plain-text rendering of tables and series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and readable without any
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = ["format_table", "format_series", "format_checks", "ascii_chart"]


def _cell(value: object) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        if not np.isfinite(value):
            return str(value)
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table with a header rule."""
    if not headers:
        raise ParameterError("headers must be non-empty")
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ParameterError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[object],
    *,
    max_rows: int = 24,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a named series, down-sampled evenly to ``max_rows`` rows."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ParameterError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    if max_rows < 2:
        raise ParameterError(f"max_rows must be >= 2, got {max_rows}")
    if not xs:
        return f"{name}: (empty)"
    if len(xs) > max_rows:
        idx = np.linspace(0, len(xs) - 1, max_rows).round().astype(int)
        xs = [xs[i] for i in idx]
        ys = [ys[i] for i in idx]
    body = format_table([x_label, y_label], zip(xs, ys))
    return f"{name}\n{body}"


def ascii_chart(
    series: dict,
    *,
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render one or more named y-series as an ASCII line chart.

    Args:
        series: ``{label: sequence_of_y_values}``; series are drawn over
            a shared x-index (resampled to ``width`` columns) and a
            shared y-range, each with its own glyph.
        width / height: plot area in characters.
        title: optional heading line.

    Returns:
        A multi-line string: title, plot rows (y-axis labels on the
        left), an x-axis rule, and a legend mapping glyphs to labels.
    """
    if not series:
        raise ParameterError("ascii_chart needs at least one series")
    if width < 8 or height < 3:
        raise ParameterError(
            f"need width >= 8 and height >= 3, got {width}x{height}"
        )
    glyphs = "*o+x#@%&"
    if len(series) > len(glyphs):
        raise ParameterError(
            f"at most {len(glyphs)} series supported, got {len(series)}"
        )

    arrays = {}
    for label, values in series.items():
        arr = np.asarray(list(values), dtype=float)
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            raise ParameterError(f"series {label!r} has no finite values")
        arrays[label] = arr
    y_min = min(float(a[np.isfinite(a)].min()) for a in arrays.values())
    y_max = max(float(a[np.isfinite(a)].max()) for a in arrays.values())
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (label, arr) in zip(glyphs, arrays.items()):
        columns = np.linspace(0, arr.size - 1, width).round().astype(int)
        for col, idx in enumerate(columns):
            value = arr[idx]
            if not np.isfinite(value):
                continue
            row = int(round((value - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = glyph

    left_labels = [f"{y_max:>10.3g} |", " " * 10 + " |", f"{y_min:>10.3g} |"]
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = left_labels[0]
        elif row_index == height - 1:
            prefix = left_labels[2]
        else:
            prefix = left_labels[1]
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    legend = "   ".join(
        f"{glyph} {label}" for glyph, label in zip(glyphs, arrays)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def format_checks(name: str, checks: dict) -> str:
    """Render a shape-check dict: PASS/FAIL per boolean, values verbatim."""
    lines = [name]
    for key, value in checks.items():
        if isinstance(value, bool):
            lines.append(f"  [{'PASS' if value else 'FAIL'}] {key}")
        else:
            lines.append(f"  {key} = {_cell(value)}")
    return "\n".join(lines)
