"""Streaming-playback analysis over piece acquisition logs.

The paper's related work [1] (Arthur & Panigrahy) asks whether
BitTorrent-style swarms can stream content: playback consumes pieces
*in index order* at a fixed rate, so what matters is when each piece
index became available — not how many pieces are held.

Given a peer's indexed acquisition log, this module computes:

* the minimal **startup delay** after which in-order playback never
  stalls;
* the **stall profile** (count and total stalled time) for a given
  startup delay;

and aggregates either across a swarm.  Together with the
``"sequential"`` piece-selection policy these quantify the paper's
summary of [1]: BitTorrent "can be effective for streaming content
provided proper upload scheduling policies are used".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "PlaybackResult",
    "availability_times",
    "minimal_startup_delay",
    "playback_stalls",
    "swarm_streaming_summary",
]


@dataclass(frozen=True)
class PlaybackResult:
    """Outcome of simulated in-order playback for one download.

    Attributes:
        startup_delay: delay between arrival and pressing play.
        stall_count: number of distinct rebuffering events.
        stalled_time: total time spent stalled.
    """

    startup_delay: float
    stall_count: int
    stalled_time: float


def availability_times(
    piece_log: Sequence[Tuple[float, int]],
    num_pieces: int,
    *,
    joined_at: float = 0.0,
    prefilled_available: bool = True,
) -> np.ndarray:
    """Per-index availability times from an acquisition log.

    Pieces absent from the log (held before instrumentation started,
    e.g. a pre-filled initial peer) are treated as available at
    ``joined_at`` when ``prefilled_available`` is True, else as never
    available (``inf``).
    """
    if num_pieces < 1:
        raise ParameterError(f"num_pieces must be >= 1, got {num_pieces}")
    default = joined_at if prefilled_available else np.inf
    availability = np.full(num_pieces, default, dtype=float)
    seen = np.zeros(num_pieces, dtype=bool)
    for time, piece in piece_log:
        if not 0 <= piece < num_pieces:
            raise ParameterError(f"piece {piece} outside 0..{num_pieces - 1}")
        availability[piece] = time
        seen[piece] = True
    if not prefilled_available:
        availability[~seen] = np.inf
    return availability


def playback_stalls(
    availability: np.ndarray,
    *,
    joined_at: float = 0.0,
    startup_delay: float = 0.0,
    playback_interval: float = 1.0,
) -> PlaybackResult:
    """Simulate in-order playback and count rebuffering events.

    Playback starts at ``joined_at + startup_delay`` and wants piece
    ``j`` at ``start + j * playback_interval``; whenever the piece is
    not yet available the player stalls until it is (a rebuffering
    event) and the schedule shifts accordingly.
    """
    availability = np.asarray(availability, dtype=float)
    if playback_interval <= 0:
        raise ParameterError(
            f"playback_interval must be > 0, got {playback_interval}"
        )
    if startup_delay < 0:
        raise ParameterError(f"startup_delay must be >= 0, got {startup_delay}")
    if not np.isfinite(availability).all():
        raise ParameterError(
            "availability must be finite (incomplete download?)"
        )
    clock = joined_at + startup_delay
    stall_count = 0
    stalled_time = 0.0
    for ready_at in availability:
        if ready_at > clock:
            stall_count += 1
            stalled_time += ready_at - clock
            clock = ready_at
        clock += playback_interval
    return PlaybackResult(
        startup_delay=startup_delay,
        stall_count=stall_count,
        stalled_time=stalled_time,
    )


def minimal_startup_delay(
    availability: np.ndarray,
    *,
    joined_at: float = 0.0,
    playback_interval: float = 1.0,
) -> float:
    """Smallest startup delay with stall-free in-order playback.

    Closed form: piece ``j`` must be available by
    ``joined_at + d + j * interval``, so
    ``d = max_j (availability[j] - joined_at - j * interval)`` (clamped
    at 0).
    """
    availability = np.asarray(availability, dtype=float)
    if playback_interval <= 0:
        raise ParameterError(
            f"playback_interval must be > 0, got {playback_interval}"
        )
    if not np.isfinite(availability).all():
        raise ParameterError(
            "availability must be finite (incomplete download?)"
        )
    offsets = availability - joined_at - playback_interval * np.arange(
        availability.size
    )
    return float(max(offsets.max(), 0.0))


def swarm_streaming_summary(
    completed_downloads,
    num_pieces: int,
    *,
    playback_interval: float = 1.0,
) -> Dict[str, float]:
    """Aggregate streaming metrics over a swarm's completed downloads.

    Args:
        completed_downloads: iterable of
            :class:`repro.sim.metrics.CompletedDownload`.
        num_pieces: ``B``.
        playback_interval: playback speed, time units per piece.

    Returns:
        Dict with ``mean_startup_delay``, ``p90_startup_delay``, and
        ``downloads`` (count contributing); NaNs when empty.
    """
    delays: List[float] = []
    for download in completed_downloads:
        log = download.stats.piece_log
        if len(log) < num_pieces:
            continue  # pre-filled peers lack a full indexed log
        availability = availability_times(
            log, num_pieces, joined_at=download.joined_at,
            prefilled_available=False,
        )
        delays.append(
            minimal_startup_delay(
                availability,
                joined_at=download.joined_at,
                playback_interval=playback_interval,
            )
        )
    if not delays:
        return {
            "mean_startup_delay": float("nan"),
            "p90_startup_delay": float("nan"),
            "downloads": 0.0,
        }
    return {
        "mean_startup_delay": float(np.mean(delays)),
        "p90_startup_delay": float(np.percentile(delays, 90)),
        "downloads": float(len(delays)),
    }
