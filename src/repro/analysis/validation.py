"""Model-vs-simulation validation metrics and figure shape checks.

The reproduction's acceptance criterion is *shape*, not absolute
numbers (our substrate is a simulator, not the authors' 2007 testbed):
who wins, by roughly what factor, where inflections fall.  This module
gives each figure an explicit, testable shape predicate plus generic
series-agreement metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "SeriesComparison",
    "compare_series",
    "potential_ratio_shape",
    "timeline_shape",
    "efficiency_shape",
]


@dataclass(frozen=True)
class SeriesComparison:
    """Agreement metrics between two aligned series.

    Attributes:
        rmse: root-mean-square error.
        max_abs_error: worst-case pointwise gap.
        mean_relative_error: mean of ``|a - b| / max(|b|, eps)``.
        correlation: Pearson correlation (NaN for constant series).
    """

    rmse: float
    max_abs_error: float
    mean_relative_error: float
    correlation: float


def compare_series(candidate: np.ndarray, reference: np.ndarray) -> SeriesComparison:
    """Compare two aligned series (e.g. model vs simulation timeline)."""
    candidate = np.asarray(candidate, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if candidate.shape != reference.shape:
        raise ParameterError(
            f"series must align, got {candidate.shape} vs {reference.shape}"
        )
    if candidate.size == 0:
        raise ParameterError("cannot compare empty series")
    mask = np.isfinite(candidate) & np.isfinite(reference)
    if not mask.any():
        raise ParameterError("no finite overlapping points to compare")
    a = candidate[mask]
    b = reference[mask]
    diff = a - b
    rmse = float(np.sqrt(np.mean(diff**2)))
    max_abs = float(np.abs(diff).max())
    rel = float(np.mean(np.abs(diff) / np.maximum(np.abs(b), 1e-12)))
    if a.std() == 0 or b.std() == 0:
        corr = float("nan")
    else:
        corr = float(np.corrcoef(a, b)[0, 1])
    return SeriesComparison(
        rmse=rmse,
        max_abs_error=max_abs,
        mean_relative_error=rel,
        correlation=corr,
    )


def potential_ratio_shape(
    pieces: np.ndarray,
    ratio: np.ndarray,
    *,
    mid_level: float = 0.75,
    edge_level: float = 0.7,
) -> dict:
    """Figure 1(a) shape predicate for the potential-set ratio curve.

    Expected: the ratio climbs from ~0.5 near ``b = 1``, peaks near the
    middle of the file above ``mid_level``, and declines toward the end
    below the mid-range peak (the paper: 0.5 at ``b = 1`` and
    ``b = B - 1``, max at ``b = B/2``).

    Returns a dict of named boolean checks plus measured levels, so
    failures are diagnosable in test output.
    """
    pieces = np.asarray(pieces)
    ratio = np.asarray(ratio, dtype=float)
    if pieces.shape != ratio.shape or pieces.size < 8:
        raise ParameterError("need aligned series with at least 8 points")
    finite = np.isfinite(ratio)
    num_pieces = int(pieces[-1])
    mid_band = finite & (pieces >= 0.4 * num_pieces) & (pieces <= 0.6 * num_pieces)
    early_band = finite & (pieces >= 1) & (pieces <= max(0.05 * num_pieces, 2))
    late_band = finite & (pieces >= 0.95 * num_pieces) & (pieces < num_pieces)
    mid = float(ratio[mid_band].mean()) if mid_band.any() else float("nan")
    early = float(ratio[early_band].mean()) if early_band.any() else float("nan")
    late = float(ratio[late_band].mean()) if late_band.any() else float("nan")
    return {
        "mid_high": bool(mid >= mid_level),
        "rises_from_start": bool(early < mid),
        "falls_to_end": bool(late < mid),
        "edges_moderate": bool(early <= edge_level and late <= edge_level + 0.1),
        "early": early,
        "mid": mid,
        "late": late,
    }


def timeline_shape(
    mean_steps: np.ndarray,
    *,
    num_pieces: int,
    max_conns: int,
) -> dict:
    """Figure 1(b) shape predicate for a download timeline.

    Expected: monotone non-decreasing first-passage times, total time at
    least the parallelism bound ``B / k``, and a finite completion.
    """
    mean_steps = np.asarray(mean_steps, dtype=float)
    if mean_steps.size != num_pieces + 1:
        raise ParameterError(
            f"timeline must have B+1 = {num_pieces + 1} entries, "
            f"got {mean_steps.size}"
        )
    diffs = np.diff(mean_steps)
    return {
        "monotone": bool((diffs >= -1e-9).all()),
        "respects_parallelism_bound": bool(
            mean_steps[-1] >= num_pieces / max_conns - 1e-9
        ),
        "finite": bool(np.isfinite(mean_steps).all()),
        "total": float(mean_steps[-1]),
    }


def efficiency_shape(k_values: np.ndarray, etas: np.ndarray) -> dict:
    """Figure 3/4(a) shape predicate for the efficiency curve.

    Expected: the gain from ``k = 1`` to ``k = 2`` dominates every
    subsequent single-step gain, and the curve saturates (every eta for
    ``k >= 2`` within a tight band of the final value).
    """
    k_values = np.asarray(k_values)
    etas = np.asarray(etas, dtype=float)
    if k_values.shape != etas.shape or k_values.size < 3:
        raise ParameterError("need aligned k/eta series with >= 3 points")
    if k_values[0] != 1:
        raise ParameterError("efficiency shape check expects the sweep to start at k=1")
    gains = np.diff(etas)
    first_gain = float(gains[0])
    later_max = float(gains[1:].max()) if gains.size > 1 else 0.0
    plateau_band = float(etas[-1] - etas[1:].min())
    return {
        "first_gain_dominates": bool(first_gain >= later_max - 1e-12),
        "first_gain_positive": bool(first_gain > 0),
        "plateau_after_two": bool(plateau_band <= 0.15),
        "first_gain": first_gain,
        "later_max_gain": later_max,
    }
