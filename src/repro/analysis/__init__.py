"""Cross-cutting analysis helpers: series math, validation, reporting.

* :mod:`repro.analysis.series` — binning, smoothing and step
  interpolation for the time series the experiments produce;
* :mod:`repro.analysis.validation` — model-vs-simulation comparison
  metrics and the shape assertions each figure reproduction must pass;
* :mod:`repro.analysis.reporting` — plain-text table/series rendering
  used by the benchmark harness and the CLI (this reproduction has no
  plotting dependency; every figure is emitted as labelled rows).
"""

from repro.analysis.calibration import (
    CalibrationResult,
    calibrate_parameters,
    estimate_alpha,
    estimate_gamma,
    estimate_survival,
)
from repro.analysis.reporting import format_series, format_table
from repro.analysis.sensitivity import (
    SensitivityReport,
    sensitivity_analysis,
)
from repro.analysis.series import bin_series, moving_average, step_interpolate
from repro.analysis.streaming import (
    PlaybackResult,
    availability_times,
    minimal_startup_delay,
    playback_stalls,
    swarm_streaming_summary,
)
from repro.analysis.validation import (
    compare_series,
    potential_ratio_shape,
    timeline_shape,
)

__all__ = [
    "CalibrationResult",
    "calibrate_parameters",
    "estimate_alpha",
    "estimate_gamma",
    "estimate_survival",
    "SensitivityReport",
    "sensitivity_analysis",
    "format_series",
    "format_table",
    "bin_series",
    "moving_average",
    "step_interpolate",
    "compare_series",
    "potential_ratio_shape",
    "timeline_shape",
    "PlaybackResult",
    "availability_times",
    "minimal_startup_delay",
    "playback_stalls",
    "swarm_streaming_summary",
]
