"""Parameter-sensitivity analysis of the download-evolution model.

The paper's stated goal is "to study the impact of protocol design on
the performance of the system".  This module quantifies that impact
systematically: for each model parameter, sweep it around a baseline
and measure the expected download time, reporting an elasticity
(relative output change per relative input change) so the parameters'
leverage can be ranked.

Expected ranking for a healthy baseline: ``max_conns`` and ``ns_size``
dominate (they set the trading-phase rate), while ``alpha`` and
``gamma`` matter only to the degree that stalls occur — their leverage
explodes exactly in the small-neighborhood regimes where the bootstrap
and last phases appear (the paper's Figure 1 story).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from repro.analysis.reporting import format_table
from repro.core.chain import DownloadChain
from repro.core.parameters import ModelParameters
from repro.core.timeline import _mean_timeline_impl
from repro.errors import ParameterError

__all__ = ["SensitivityPoint", "SensitivityReport", "sensitivity_analysis"]

#: Parameters the sweep knows how to vary, with their value kind.
_SWEEPABLE = {
    "max_conns": "int",
    "ns_size": "int",
    "p_init": "prob",
    "alpha": "prob",
    "gamma": "prob",
    "p_reenc": "prob",
    "p_new": "prob",
}


@dataclass(frozen=True)
class SensitivityPoint:
    """One parameter's measured leverage.

    Attributes:
        parameter: the swept field name.
        baseline_value / low_value / high_value: the sweep points.
        baseline_time / low_time / high_time: expected download times.
        elasticity: ``(dT/T) / (dx/x)`` estimated across the sweep —
            negative means increasing the parameter speeds downloads.
    """

    parameter: str
    baseline_value: float
    low_value: float
    high_value: float
    baseline_time: float
    low_time: float
    high_time: float
    elasticity: float


@dataclass
class SensitivityReport:
    """Full sensitivity sweep around one baseline."""

    baseline: ModelParameters
    points: List[SensitivityPoint]

    def ranked(self) -> List[SensitivityPoint]:
        """Points ordered by |elasticity|, most influential first."""
        return sorted(self.points, key=lambda p: -abs(p.elasticity))

    def format(self) -> str:
        rows = [
            [p.parameter, p.low_value, p.baseline_value, p.high_value,
             round(p.low_time, 1), round(p.baseline_time, 1),
             round(p.high_time, 1), round(p.elasticity, 2)]
            for p in self.ranked()
        ]
        return (
            f"Sensitivity of expected download time "
            f"(baseline: {self.baseline.describe()})\n"
            + format_table(
                ["parameter", "low", "base", "high",
                 "T(low)", "T(base)", "T(high)", "elasticity"],
                rows,
            )
        )


def _vary(params: ModelParameters, name: str, factor: float) -> ModelParameters:
    kind = _SWEEPABLE[name]
    value = getattr(params, name)
    if kind == "int":
        new_value = max(int(round(value * factor)), 1)
    else:
        new_value = min(max(value * factor, 1e-6), 1.0)
    return params.with_changes(**{name: new_value})


def _expected_time(params: ModelParameters, runs: int, seed: int) -> float:
    chain = DownloadChain(params)
    return _mean_timeline_impl(chain, runs=runs, seed=seed).total_download_time()


def sensitivity_analysis(
    baseline: ModelParameters,
    *,
    parameters: Optional[Sequence[str]] = None,
    factor: float = 1.5,
    runs: int = 32,
    seed: int = 0,
) -> SensitivityReport:
    """Sweep each parameter by ``x / factor`` and ``x * factor``.

    Args:
        baseline: the central parameter set.
        parameters: which fields to sweep (defaults to all sweepable).
        factor: multiplicative sweep half-width (> 1).
        runs: Monte-Carlo trajectories per evaluation.

    Raises:
        ParameterError: for an unknown parameter name or factor <= 1.
    """
    if factor <= 1.0:
        raise ParameterError(f"factor must be > 1, got {factor}")
    names = list(parameters) if parameters is not None else list(_SWEEPABLE)
    for name in names:
        if name not in _SWEEPABLE:
            raise ParameterError(
                f"cannot sweep {name!r}; sweepable: {sorted(_SWEEPABLE)}"
            )

    baseline_time = _expected_time(baseline, runs, seed)
    points: List[SensitivityPoint] = []
    for offset, name in enumerate(names):
        low_params = _vary(baseline, name, 1.0 / factor)
        high_params = _vary(baseline, name, factor)
        low_value = float(getattr(low_params, name))
        high_value = float(getattr(high_params, name))
        if low_value == high_value:
            continue  # integer parameter pinned at its floor
        low_time = _expected_time(low_params, runs, seed + 1000 + offset)
        high_time = _expected_time(high_params, runs, seed + 2000 + offset)
        base_value = float(getattr(baseline, name))
        relative_dx = (high_value - low_value) / base_value
        relative_dt = (high_time - low_time) / baseline_time
        elasticity = relative_dt / relative_dx if relative_dx else 0.0
        points.append(
            SensitivityPoint(
                parameter=name,
                baseline_value=base_value,
                low_value=low_value,
                high_value=high_value,
                baseline_time=baseline_time,
                low_time=low_time,
                high_time=high_time,
                elasticity=elasticity,
            )
        )
    return SensitivityReport(baseline=baseline, points=points)
