"""Trace-driven calibration of the model parameters.

The paper validates its model against measured traces; this module
closes the other direction — *fitting* the model's free parameters to a
collection of traces, so the chain can be parameterised from data
rather than hand-set:

* ``alpha`` — the per-round bootstrap-escape probability.  Bootstrap
  stalls (leading samples with an empty potential set and at most one
  piece) have geometric duration under the model; the MLE for the
  geometric parameter is ``escapes / total stalled rounds``.
* ``gamma`` — identically, from last-phase stalls (empty potential set
  with more than one piece).
* ``p_r`` — from the active-connection series: the model drops each of
  the ``n_t`` connections independently, so the aggregate expected
  drops per round are ``(1 - p_r) * n_t``.  Individual connections are
  not observable in a trace (simultaneous drop + formation cancel in
  the count), so the net-decrease moment estimator
  ``1 - sum(max(n_t - n_{t+1}, 0)) / sum(n_t)`` *over-estimates*
  ``p_r``; it is exact when drops and formations do not co-occur.

``p_init`` and ``p_n`` are not identifiable from the logged series
(formation attempts are not recorded) and keep their defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.parameters import ModelParameters
from repro.errors import ParameterError
from repro.traces.schema import ClientTrace

__all__ = [
    "CalibrationResult",
    "estimate_alpha",
    "estimate_gamma",
    "estimate_survival",
    "calibrate_parameters",
]


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted parameters and the evidence behind them.

    Attributes:
        alpha / gamma / p_reenc: point estimates (NaN when the traces
            contain no relevant observations).
        bootstrap_stall_rounds / bootstrap_escapes: evidence for alpha.
        last_stall_rounds / last_escapes: evidence for gamma.
        connection_rounds / connection_drops: evidence for p_r.
    """

    alpha: float
    gamma: float
    p_reenc: float
    bootstrap_stall_rounds: int
    bootstrap_escapes: int
    last_stall_rounds: int
    last_escapes: int
    connection_rounds: int
    connection_drops: int


def _stall_runs(trace: ClientTrace, *, bootstrap: bool) -> Tuple[int, int]:
    """(stalled rounds, escape events) for one trace.

    ``bootstrap=True`` counts stalls at *exactly one* piece — the
    model's stuck state ``(0, 1, 0)`` whose escape is governed by
    ``alpha``.  Zero-piece samples are excluded: the first-piece
    acquisition and the initial potential-set draw are governed by
    ``p_init``, and counting them would contaminate the estimate.
    ``bootstrap=False`` counts stalls at more than one piece but before
    completion (the last phase, escape probability ``gamma``).  A run
    that ends because the trace ends (censored) contributes its rounds
    but no escape — exactly the right likelihood treatment for
    geometric data.
    """
    piece = trace.piece_size_bytes
    file_size = trace.file_size_bytes
    stalled_rounds = 0
    escapes = 0
    in_stall = False
    for sample in trace.samples:
        pieces_held = sample.cumulative_bytes
        is_bootstrap_state = pieces_held == piece
        is_last_state = piece < pieces_held < file_size
        relevant = is_bootstrap_state if bootstrap else is_last_state
        if sample.potential_set_size == 0 and relevant:
            stalled_rounds += 1
            in_stall = True
        else:
            if in_stall and sample.potential_set_size > 0:
                escapes += 1
            in_stall = False
    return stalled_rounds, escapes


def estimate_alpha(traces: Sequence[ClientTrace]) -> Tuple[float, int, int]:
    """Geometric MLE for the bootstrap-escape probability.

    Returns:
        ``(alpha_hat, stalled_rounds, escapes)``; ``alpha_hat`` is NaN
        when no bootstrap stall was observed.
    """
    total_rounds = 0
    total_escapes = 0
    for trace in traces:
        rounds, escapes = _stall_runs(trace, bootstrap=True)
        total_rounds += rounds
        total_escapes += escapes
    alpha = total_escapes / total_rounds if total_rounds else float("nan")
    return min(alpha, 1.0) if total_rounds else float("nan"), total_rounds, total_escapes


def estimate_gamma(traces: Sequence[ClientTrace]) -> Tuple[float, int, int]:
    """Geometric MLE for the last-phase escape probability."""
    total_rounds = 0
    total_escapes = 0
    for trace in traces:
        rounds, escapes = _stall_runs(trace, bootstrap=False)
        total_rounds += rounds
        total_escapes += escapes
    gamma = total_escapes / total_rounds if total_rounds else float("nan")
    return min(gamma, 1.0) if total_rounds else float("nan"), total_rounds, total_escapes


def estimate_survival(traces: Sequence[ClientTrace]) -> Tuple[float, int, int]:
    """Net-decrease moment estimator for ``p_r`` (see module docstring).

    Returns:
        ``(p_r_hat, connection_rounds, observed_drops)``.
    """
    total_conn_rounds = 0
    total_drops = 0
    for trace in traces:
        series = trace.connection_series()
        for current, following in zip(series[:-1], series[1:]):
            total_conn_rounds += current
            total_drops += max(current - following, 0)
    if total_conn_rounds == 0:
        return float("nan"), 0, 0
    return 1.0 - total_drops / total_conn_rounds, total_conn_rounds, total_drops


def calibrate_parameters(
    traces: Sequence[ClientTrace],
    *,
    max_conns: int,
    ns_size: int,
    fallback_alpha: float = 0.1,
    fallback_gamma: float = 0.1,
    fallback_p_reenc: float = 0.7,
) -> Tuple[ModelParameters, CalibrationResult]:
    """Fit a :class:`ModelParameters` to a collection of traces.

    The file geometry (``B``, piece size) is read off the traces; the
    chain dimensions ``k`` and ``s`` are protocol configuration and must
    be supplied.  Parameters without observations fall back to the
    given defaults.

    Raises:
        ParameterError: for an empty trace collection or inconsistent
            file geometry across traces.
    """
    traces = list(traces)
    if not traces:
        raise ParameterError("need at least one trace to calibrate")
    num_pieces = traces[0].num_pieces
    for trace in traces:
        if trace.num_pieces != num_pieces:
            raise ParameterError(
                "traces cover different files: "
                f"B={trace.num_pieces} vs B={num_pieces}"
            )

    alpha, boot_rounds, boot_escapes = estimate_alpha(traces)
    gamma, last_rounds, last_escapes = estimate_gamma(traces)
    p_reenc, conn_rounds, drops = estimate_survival(traces)

    import math

    result = CalibrationResult(
        alpha=alpha,
        gamma=gamma,
        p_reenc=p_reenc,
        bootstrap_stall_rounds=boot_rounds,
        bootstrap_escapes=boot_escapes,
        last_stall_rounds=last_rounds,
        last_escapes=last_escapes,
        connection_rounds=conn_rounds,
        connection_drops=drops,
    )
    params = ModelParameters(
        num_pieces=num_pieces,
        max_conns=max_conns,
        ns_size=ns_size,
        alpha=fallback_alpha if math.isnan(alpha) else alpha,
        gamma=fallback_gamma if math.isnan(gamma) else gamma,
        p_reenc=fallback_p_reenc if math.isnan(p_reenc) else max(p_reenc, 0.0),
    )
    return params, result
