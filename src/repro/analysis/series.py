"""Time-series utilities shared by experiments and benches."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = ["bin_series", "moving_average", "step_interpolate"]


def bin_series(
    times: np.ndarray,
    values: np.ndarray,
    bin_width: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Average ``values`` into fixed-width time bins.

    Returns ``(bin_centers, bin_means)``; empty bins are dropped.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ParameterError(
            f"times and values must align, got {times.shape} vs {values.shape}"
        )
    if bin_width <= 0:
        raise ParameterError(f"bin_width must be > 0, got {bin_width}")
    if times.size == 0:
        return np.array([]), np.array([])
    start = times.min()
    indices = ((times - start) / bin_width).astype(int)
    centers = []
    means = []
    for idx in np.unique(indices):
        mask = indices == idx
        centers.append(start + (idx + 0.5) * bin_width)
        means.append(values[mask].mean())
    return np.asarray(centers), np.asarray(means)


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinkage (output length = input).

    Raises:
        ParameterError: for ``window < 1``.
    """
    values = np.asarray(values, dtype=float)
    if window < 1:
        raise ParameterError(f"window must be >= 1, got {window}")
    if window == 1 or values.size == 0:
        return values.copy()
    half = window // 2
    out = np.empty_like(values)
    for idx in range(values.size):
        lo = max(idx - half, 0)
        hi = min(idx + half + 1, values.size)
        out[idx] = values[lo:hi].mean()
    return out


def step_interpolate(
    times: np.ndarray,
    values: np.ndarray,
    query_times: np.ndarray,
) -> np.ndarray:
    """Piecewise-constant (last-observation-carried-forward) interpolation.

    Queries before the first sample get the first value.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    query_times = np.asarray(query_times, dtype=float)
    if times.shape != values.shape:
        raise ParameterError(
            f"times and values must align, got {times.shape} vs {values.shape}"
        )
    if times.size == 0:
        raise ParameterError("cannot interpolate an empty series")
    if not np.all(np.diff(times) >= 0):
        raise ParameterError("times must be non-decreasing")
    idx = np.searchsorted(times, query_times, side="right") - 1
    idx = np.clip(idx, 0, values.size - 1)
    return values[idx]
