"""The unified model-query API: canonical parameters, one ``solve()``.

Historically each exact/Monte-Carlo quantity had its own entry point
with its own kwargs and its own ``method=`` vocabulary
(:func:`~repro.core.exact.exact_potential_ratio`,
:func:`~repro.core.exact.propagate_distribution`,
:func:`~repro.core.sparse.solve_fundamental`,
:func:`~repro.core.timeline.mean_timeline`).  This module redesigns that
surface around three values:

* :class:`ModelParams` — a frozen, canonicalized subclass of
  :class:`~repro.core.parameters.ModelParameters` with normalized field
  types, a JSON round-trip (:meth:`ModelParams.to_dict` /
  :meth:`ModelParams.from_dict`), and a process-independent
  :meth:`ModelParams.cache_key`;
* :class:`Query` — ``(params, quantity, method, options)`` as one
  hashable value with its own stable cache key (what the service
  coalesces identical in-flight requests on);
* :func:`solve` — one dispatch table mapping
  ``(Quantity, Method)`` to the engine that answers it, returning a
  :class:`SolveResult` that serializes uniformly.

The old entry points remain as thin deprecation shims that forward to
the same implementations, so historical callers get bit-identical
results plus a :class:`DeprecationWarning`.

Example::

    from repro.api import ModelParams, solve

    params = ModelParams(num_pieces=200, max_conns=7, ns_size=50)
    ratio = solve(params, "potential_ratio").payload.ratio
    mean = solve(params, "download_time", method="exact").payload.mean
"""

from __future__ import annotations

import enum
import hashlib
import json
import struct
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.exact import (
    PRUNED_MASS_WARN,
    PotentialRatioExact,
    _exact_potential_ratio_impl,
    _propagate_distribution_impl,
    _warn_pruned,
)
from repro.core.methods import Method
from repro.core.parameters import ModelParameters
from repro.core.phases import Phase
from repro.core.piece_distribution import PieceCountDistribution
from repro.core.timeline import (
    PhaseStatistics,
    PotentialRatioResult,
    TimelineResult,
    _mean_timeline_impl,
    phase_duration_statistics,
    potential_ratio_by_pieces,
)
from repro.errors import ParameterError
from repro.runtime.cache import KernelCache, shared_cache
from repro.serialize import to_jsonable

__all__ = [
    "ModelParams",
    "Quantity",
    "Query",
    "SolveResult",
    "DownloadTimeResult",
    "MEANFIELD_STATE_FACTOR",
    "solve",
    "solve_query",
]

_INT_FIELDS = ("num_pieces", "max_conns", "ns_size")
_FLOAT_FIELDS = ("p_init", "alpha", "gamma", "p_reenc", "p_new")


def _as_int(value: Any, name: str) -> int:
    """Coerce numpy/JSON integers to ``int``; reject fractional values."""
    try:
        coerced = int(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be an integer, got {value!r}") from exc
    try:
        fractional = float(value) != float(coerced)
    except (TypeError, ValueError, OverflowError):
        fractional = False  # non-numeric inputs already settled by int()
    if fractional:
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    return coerced


def _as_float(value: Any, name: str) -> float:
    """Coerce to ``float``; ``+ 0.0`` folds ``-0.0`` into ``0.0``."""
    try:
        return float(value) + 0.0
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a number, got {value!r}") from exc


class ModelParams(ModelParameters):
    """Canonicalized, cache-keyed model parameters.

    A frozen subclass of
    :class:`~repro.core.parameters.ModelParameters` that normalizes its
    fields before validation — integers become built-in ``int``, floats
    become built-in ``float`` (with ``-0.0`` folded to ``0.0``), so two
    parameter sets that denote the same model compare, hash, and
    cache-key identically regardless of whether they were built from
    Python literals, numpy scalars, or a JSON request body.

    :meth:`cache_key` digests the exact field bytes (including the
    ``phi`` pmf), so it is stable across processes, platforms, and
    ``PYTHONHASHSEED`` — the property the service's shared cache and
    request coalescing rely on.
    """

    def __post_init__(self) -> None:
        for name in _INT_FIELDS:
            object.__setattr__(self, name, _as_int(getattr(self, name), name))
        for name in _FLOAT_FIELDS:
            object.__setattr__(self, name, _as_float(getattr(self, name), name))
        super().__post_init__()

    @classmethod
    def of(
        cls, params: Union["ModelParams", ModelParameters], **changes: Any
    ) -> "ModelParams":
        """Canonicalize any :class:`ModelParameters` (plus overrides)."""
        if isinstance(params, cls) and not changes:
            return params
        if not isinstance(params, ModelParameters):
            raise ParameterError(
                f"expected ModelParameters, got {type(params).__name__}"
            )
        values = {f.name: getattr(params, f.name) for f in fields(params)}
        values.update(changes)
        return cls(**values)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModelParams":
        """Build from a JSON-shaped mapping (the service request body).

        Accepts the field names of :class:`ModelParameters`; ``phi`` may
        be omitted/``None`` (uniform) or a pmf list over ``1..B``.
        Unknown keys raise an actionable :class:`ParameterError`.
        """
        if not isinstance(payload, Mapping):
            raise ParameterError(
                f"params must be a mapping, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ParameterError(
                f"unknown parameter field(s) {unknown}; "
                f"valid fields: {sorted(known)}"
            )
        missing = [name for name in _INT_FIELDS if name not in payload]
        if missing:
            raise ParameterError(f"missing required parameter field(s) {missing}")
        values = dict(payload)
        phi = values.get("phi")
        if phi is not None and not isinstance(phi, PieceCountDistribution):
            num_pieces = _as_int(values["num_pieces"], "num_pieces")
            values["phi"] = PieceCountDistribution(
                num_pieces, np.asarray(phi, dtype=float)
            )
        return cls(**values)

    def to_dict(self) -> dict:
        """JSON-ready mapping; ``phi`` is ``None`` when uniform."""
        uniform = PieceCountDistribution.uniform(self.num_pieces)
        return {
            "num_pieces": self.num_pieces,
            "max_conns": self.max_conns,
            "ns_size": self.ns_size,
            "p_init": self.p_init,
            "alpha": self.alpha,
            "gamma": self.gamma,
            "p_reenc": self.p_reenc,
            "p_new": self.p_new,
            "phi": None if self.phi == uniform else self.phi.as_array().tolist(),
        }

    # ------------------------------------------------------------------
    # Cache key
    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """Hex digest uniquely identifying this parameter set.

        SHA-256 over the packed field values and the raw ``phi`` pmf
        bytes; independent of process, platform word order is pinned
        little-endian.
        """
        digest = hashlib.sha256()
        digest.update(
            struct.pack("<3q", self.num_pieces, self.max_conns, self.ns_size)
        )
        digest.update(
            struct.pack(
                "<5d", self.p_init, self.alpha, self.gamma,
                self.p_reenc, self.p_new,
            )
        )
        digest.update(self.phi.as_array().astype("<f8").tobytes())
        return digest.hexdigest()


class Quantity(str, enum.Enum):
    """The model quantities :func:`solve` can answer.

    Members compare equal to their canonical string value; the aliases
    in :data:`_QUANTITY_ALIASES` map the historical entry-point and
    figure names onto them.
    """

    POTENTIAL_RATIO = "potential_ratio"
    TIMELINE = "timeline"
    DOWNLOAD_TIME = "download_time"
    PHASES = "phases"
    TRANSIENT = "transient"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def parse(cls, value: Union["Quantity", str]) -> "Quantity":
        """Resolve a quantity name or alias; actionable on typos."""
        if isinstance(value, cls):
            return value
        if not isinstance(value, str):
            raise ParameterError(
                f"quantity must be a string or Quantity, "
                f"got {type(value).__name__}"
            )
        name = value.strip().lower()
        try:
            return cls(name)
        except ValueError:
            alias = _QUANTITY_ALIASES.get(name)
            if alias is not None:
                return alias
        choices = ", ".join(repr(member.value) for member in cls)
        aliases = ", ".join(repr(a) for a in sorted(_QUANTITY_ALIASES))
        raise ParameterError(
            f"unknown quantity {value!r}; valid choices: {choices} "
            f"(aliases: {aliases})"
        )


_QUANTITY_ALIASES = {
    "ratio": Quantity.POTENTIAL_RATIO,
    "fig1a": Quantity.POTENTIAL_RATIO,
    "first_passage": Quantity.TIMELINE,
    "fig1b": Quantity.TIMELINE,
    "mean_download_time": Quantity.DOWNLOAD_TIME,
    "ttd": Quantity.DOWNLOAD_TIME,
    "phase_split": Quantity.PHASES,
    "phase_durations": Quantity.PHASES,
    "distribution": Quantity.TRANSIENT,
}

#: Methods each quantity accepts (AUTO resolves before dispatch).
_ALLOWED_METHODS = {
    Quantity.POTENTIAL_RATIO: (
        Method.EXACT, Method.BATCH, Method.SERIAL, Method.DICT,
        Method.MEANFIELD,
    ),
    Quantity.TIMELINE: (
        Method.EXACT, Method.BATCH, Method.SERIAL, Method.MEANFIELD,
    ),
    Quantity.DOWNLOAD_TIME: (
        Method.EXACT, Method.BATCH, Method.SERIAL, Method.MEANFIELD,
    ),
    Quantity.PHASES: (
        Method.EXACT, Method.BATCH, Method.SERIAL, Method.MEANFIELD,
    ),
    Quantity.TRANSIENT: (Method.EXACT, Method.DICT),
}


@dataclass(frozen=True)
class DownloadTimeResult:
    """Mean download time (rounds to ``b == B``) from one solve.

    Attributes:
        mean / std / variance: download-time moments; exact for
            ``method="exact"`` (``runs == 0``), sample moments for the
            Monte-Carlo methods.
        runs: trajectories sampled (0 = exact).
        method: the engine that produced the numbers.
    """

    mean: float
    std: float
    variance: float
    runs: int
    method: str


@dataclass(frozen=True)
class Query:
    """One canonical model query: parameters + quantity + method + options.

    Build through :meth:`Query.make` (which canonicalizes the params,
    parses quantity/method names, resolves ``auto``, and validates the
    options) or :meth:`Query.from_request` (the service's JSON body).

    Attributes:
        params: canonicalized :class:`ModelParams`.
        quantity: the requested :class:`Quantity`.
        method: the resolved :class:`Method` (never ``AUTO``).
        options: canonically sorted ``(key, value)`` pairs.
    """

    params: ModelParams
    quantity: Quantity
    method: Method
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        params: ModelParameters,
        quantity: Union[Quantity, str],
        method: Union[Method, str] = Method.AUTO,
        **options: Any,
    ) -> "Query":
        params = ModelParams.of(params)
        quantity = Quantity.parse(quantity)
        method = Method.parse(
            method, allowed=_ALLOWED_METHODS[quantity] + (Method.AUTO,)
        )
        if method is Method.AUTO:
            method = _resolve_auto(params, quantity, options)
            if method in (Method.BATCH, Method.SERIAL, Method.MEANFIELD):
                # max_states steered the auto cutoff; the non-exact
                # engines have no use for it, so it leaves the
                # canonical query.
                options = {
                    k: v for k, v in options.items() if k != "max_states"
                }
        _validate_options(quantity, method, options)
        return cls(
            params=params,
            quantity=quantity,
            method=method,
            options=tuple(sorted(options.items())),
        )

    @classmethod
    def from_request(cls, payload: Mapping[str, Any]) -> "Query":
        """Build a query from a service request body.

        Expected shape::

            {"params": {...}, "quantity": "...",
             "method": "auto", "options": {...}}
        """
        if not isinstance(payload, Mapping):
            raise ParameterError(
                f"request body must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        unknown = sorted(
            set(payload) - {"params", "quantity", "method", "options"}
        )
        if unknown:
            raise ParameterError(
                f"unknown request field(s) {unknown}; valid fields: "
                f"['params', 'quantity', 'method', 'options']"
            )
        if "params" not in payload or "quantity" not in payload:
            raise ParameterError(
                "request must carry 'params' and 'quantity' fields"
            )
        options = payload.get("options") or {}
        if not isinstance(options, Mapping):
            raise ParameterError(
                f"options must be a JSON object, got {type(options).__name__}"
            )
        return cls.make(
            ModelParams.from_dict(payload["params"]),
            payload["quantity"],
            payload.get("method") or Method.AUTO,
            **dict(options),
        )

    def cache_key(self) -> str:
        """Process-independent digest identifying this exact query."""
        digest = hashlib.sha256()
        digest.update(self.params.cache_key().encode("ascii"))
        digest.update(self.quantity.value.encode("ascii"))
        digest.update(self.method.value.encode("ascii"))
        digest.update(
            json.dumps(self.options, sort_keys=True, default=str).encode("utf-8")
        )
        return digest.hexdigest()


def _transient_state_count(params: ModelParameters) -> int:
    return params.num_pieces * (params.max_conns + 1) * (params.ns_size + 1)


#: AUTO's mean-field threshold, as a multiple of the exact-engine state
#: cap: up to ``factor * cap`` transient states the batch sampler is
#: still cheap and carries error bars; beyond it the state space is so
#: large that the deterministic large-swarm limit is both faster and
#: more accurate than affordable sampling.
MEANFIELD_STATE_FACTOR = 8


def _resolve_auto(
    params: ModelParams, quantity: Quantity, options: Mapping[str, Any]
) -> Method:
    """``auto``: exact / batch / mean-field by transient-space size.

    Three tiers against the exact-engine state cap (``max_states``
    option, defaulting to the sparse engine's
    :data:`~repro.core.sparse.DEFAULT_MAX_STATES`):

    * ``states <= cap`` — the sparse exact engine;
    * ``cap < states <= MEANFIELD_STATE_FACTOR * cap`` — batched Monte
      Carlo (error bars, still affordable);
    * above — the mean-field ODE limit, whose accuracy *improves* as
      the state space (and swarm) grows while its cost stays flat.

    ``TRANSIENT`` has no Monte-Carlo or mean-field estimator, so auto
    always means the sparse engine there (the dict engine is the slow
    reference path and never a sensible automatic choice).
    """
    if quantity is Quantity.TRANSIENT:
        return Method.EXACT
    from repro.core.sparse import DEFAULT_MAX_STATES

    cap = options.get("max_states") or DEFAULT_MAX_STATES
    states = _transient_state_count(params)
    if states <= cap:
        return Method.EXACT
    if states <= MEANFIELD_STATE_FACTOR * cap:
        return Method.BATCH
    return Method.MEANFIELD


#: Options each (quantity, method) cell accepts.
_EXACT_OPTIONS = frozenset({"drop_tol", "max_states", "warn_above"})
_MC_OPTIONS = frozenset({"runs", "seed"})
_DICT_RATIO_OPTIONS = frozenset({"horizon", "prune", "warn_above"})
_TRANSIENT_OPTIONS = frozenset({"horizon", "prune"})
_MEANFIELD_OPTIONS = frozenset(
    {"rtol", "atol", "drain_tol", "max_rounds", "swarm_size"}
)


def _option_names(quantity: Quantity, method: Method) -> frozenset:
    if quantity is Quantity.TRANSIENT:
        return _TRANSIENT_OPTIONS
    if method in (Method.BATCH, Method.SERIAL):
        return _MC_OPTIONS
    if method is Method.DICT:
        return _DICT_RATIO_OPTIONS
    if method is Method.MEANFIELD:
        return _MEANFIELD_OPTIONS
    return _EXACT_OPTIONS


def _validate_options(
    quantity: Quantity, method: Method, options: Mapping[str, Any]
) -> None:
    accepted = _option_names(quantity, method)
    unknown = sorted(set(options) - accepted)
    if unknown:
        raise ParameterError(
            f"unknown option(s) {unknown} for quantity "
            f"{quantity.value!r} with method {method.value!r}; "
            f"accepted: {sorted(accepted)}"
        )


@dataclass(frozen=True)
class SolveResult:
    """One answered query.

    Attributes:
        params: the canonical parameters solved.
        quantity / method: what was computed and by which engine.
        payload: the quantity's native result object
            (:class:`~repro.core.exact.PotentialRatioExact`,
            :class:`~repro.core.timeline.TimelineResult`,
            :class:`DownloadTimeResult`,
            :class:`~repro.core.timeline.PhaseStatistics`, or
            :class:`~repro.core.exact.TransientResult`).
        stats: engine-side counters (e.g. ``transient_states`` for the
            sparse engine, ``runs`` for the samplers).
    """

    params: ModelParams
    quantity: Quantity
    method: Method
    payload: Any
    stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready view (the service's ``/solve`` response body)."""
        return {
            "params": self.params.to_dict(),
            "quantity": self.quantity.value,
            "method": self.method.value,
            "result": _payload_to_dict(self.quantity, self.payload),
            "stats": dict(self.stats),
        }


def _payload_to_dict(quantity: Quantity, payload: Any) -> dict:
    if quantity is Quantity.POTENTIAL_RATIO:
        if isinstance(payload, PotentialRatioExact):
            return {
                "ratio": to_jsonable(payload.ratio),
                "occupancy": to_jsonable(payload.occupancy),
                "pruned_mass": payload.pruned_mass,
                "engine": payload.method,
            }
        return {
            "ratio": to_jsonable(payload.ratio),
            "observations": to_jsonable(payload.observations),
        }
    if quantity is Quantity.TIMELINE:
        return {
            "pieces": to_jsonable(payload.pieces),
            "mean_steps": to_jsonable(payload.mean_steps),
            "std_steps": to_jsonable(payload.std_steps),
            "runs": payload.runs,
        }
    if quantity is Quantity.DOWNLOAD_TIME:
        return {
            "mean": payload.mean,
            "std": to_jsonable(payload.std),
            "variance": to_jsonable(payload.variance),
            "runs": payload.runs,
            "method": payload.method,
        }
    if quantity is Quantity.PHASES:
        return {
            "mean": {p.name.lower(): v for p, v in payload.mean.items()},
            "std": {
                p.name.lower(): to_jsonable(v) for p, v in payload.std.items()
            },
            "occupancy": {
                p.name.lower(): v for p, v in payload.occupancy.items()
            },
            "runs": payload.runs,
        }
    return {
        "rounds": to_jsonable(payload.rounds),
        "completion_pmf": to_jsonable(payload.completion_pmf),
        "completion_cdf": to_jsonable(payload.completion_cdf),
        "expected_pieces": to_jsonable(payload.expected_pieces),
        "expected_potential": to_jsonable(payload.expected_potential),
        "expected_connections": to_jsonable(payload.expected_connections),
        "pruned_mass": payload.pruned_mass,
        "tail_mass": payload.tail_mass,
        "engine": payload.method,
    }


# ----------------------------------------------------------------------
# Dispatch handlers: (params, cache, options) -> (payload, stats)
# ----------------------------------------------------------------------
def _operator_solution(params: ModelParams, cache: KernelCache, opts: dict):
    operator = cache.sparse_operator(
        params,
        drop_tol=opts.get("drop_tol"),
        max_states=opts.get("max_states"),
    )
    return operator, operator.solution()


def _ratio_exact(params: ModelParams, cache: KernelCache, opts: dict):
    operator, solution = _operator_solution(params, cache, opts)
    pruned = float(operator.dropped_mass)
    _warn_pruned(pruned, opts.get("warn_above", PRUNED_MASS_WARN), "sparse")
    payload = PotentialRatioExact(
        ratio=solution.potential_ratio,
        occupancy=solution.occupancy_by_pieces,
        pruned_mass=pruned,
        method="sparse",
    )
    return payload, {"transient_states": operator.num_states}


def _ratio_dict(params: ModelParams, cache: KernelCache, opts: dict):
    payload = _exact_potential_ratio_impl(
        cache.chain(params),
        horizon=opts.get("horizon"),
        prune=opts.get("prune", 1e-12),
        method=Method.DICT,
        warn_above=opts.get("warn_above", PRUNED_MASS_WARN),
    )
    return payload, {}


def _ratio_mc(batch: bool):
    def handler(params: ModelParams, cache: KernelCache, opts: dict):
        runs = int(opts.get("runs", 64))
        payload = potential_ratio_by_pieces(
            cache.chain(params), runs=runs, seed=opts.get("seed"), batch=batch,
        )
        return payload, {"runs": runs}

    return handler


def _timeline_exact(params: ModelParams, cache: KernelCache, opts: dict):
    operator, solution = _operator_solution(params, cache, opts)
    payload = TimelineResult(
        pieces=np.arange(params.num_pieces + 1),
        mean_steps=solution.timeline,
        std_steps=np.full(params.num_pieces + 1, np.nan),
        runs=0,
    )
    return payload, {"transient_states": operator.num_states}


def _timeline_mc(batch: bool):
    def handler(params: ModelParams, cache: KernelCache, opts: dict):
        runs = int(opts.get("runs", 64))
        payload = _mean_timeline_impl(
            cache.chain(params), runs=runs, seed=opts.get("seed"), batch=batch,
        )
        return payload, {"runs": runs}

    return handler


def _download_time_exact(params: ModelParams, cache: KernelCache, opts: dict):
    operator, solution = _operator_solution(params, cache, opts)
    payload = DownloadTimeResult(
        mean=solution.mean_download_time,
        std=solution.std_download_time,
        variance=solution.variance_download_time,
        runs=0,
        method="exact",
    )
    return payload, {"transient_states": operator.num_states}


def _download_time_mc(batch: bool, label: str):
    def handler(params: ModelParams, cache: KernelCache, opts: dict):
        runs = int(opts.get("runs", 64))
        timeline = _mean_timeline_impl(
            cache.chain(params), runs=runs, seed=opts.get("seed"), batch=batch,
        )
        std = float(timeline.std_steps[-1])
        payload = DownloadTimeResult(
            mean=float(timeline.mean_steps[-1]),
            std=std,
            variance=std * std,
            runs=runs,
            method=label,
        )
        return payload, {"runs": runs}

    return handler


def _phases(method: Method):
    def handler(params: ModelParams, cache: KernelCache, opts: dict):
        runs = int(opts.get("runs", 64))
        payload = phase_duration_statistics(
            cache.chain(params),
            runs=runs,
            seed=opts.get("seed"),
            method=method,
        )
        return payload, {"runs": payload.runs}

    return handler


def _meanfield_solution(params: ModelParams, cache: KernelCache, opts: dict):
    """Resolve the (memoized) mean-field solve plus its shared stats.

    ``swarm_size`` is metadata: the per-peer quantities of the
    mean-field limit are independent of ``N`` (the swarm enters only
    through the escape rates, via
    :meth:`ModelParameters.alpha_from_swarm`), so it is validated,
    echoed in the stats, and otherwise inert — the reason a 10**7-peer
    query costs the same milliseconds as a 10**3-peer one.
    """
    swarm_size = opts.get("swarm_size")
    if swarm_size is not None:
        swarm_size = _as_int(swarm_size, "swarm_size")
        if swarm_size < 1:
            raise ParameterError(f"swarm_size must be >= 1, got {swarm_size}")
    solution = cache.meanfield_solution(
        params,
        rtol=opts.get("rtol"),
        atol=opts.get("atol"),
        drain_tol=opts.get("drain_tol"),
        max_rounds=opts.get("max_rounds"),
    )
    stats: Dict[str, Any] = dict(solution.stats)
    if swarm_size is not None:
        stats["swarm_size"] = swarm_size
    return solution, stats


def _ratio_meanfield(params: ModelParams, cache: KernelCache, opts: dict):
    solution, stats = _meanfield_solution(params, cache, opts)
    payload = PotentialRatioResult(
        pieces=np.arange(params.num_pieces + 1),
        ratio=solution.potential_ratio,
        observations=solution.occupancy,
    )
    return payload, stats


def _timeline_meanfield(params: ModelParams, cache: KernelCache, opts: dict):
    solution, stats = _meanfield_solution(params, cache, opts)
    payload = TimelineResult(
        pieces=np.arange(params.num_pieces + 1),
        mean_steps=solution.timeline,
        std_steps=np.full(params.num_pieces + 1, np.nan),
        runs=0,
    )
    return payload, stats


def _download_time_meanfield(
    params: ModelParams, cache: KernelCache, opts: dict
):
    solution, stats = _meanfield_solution(params, cache, opts)
    payload = DownloadTimeResult(
        mean=solution.download_time,
        std=float("nan"),
        variance=float("nan"),
        runs=0,
        method="meanfield",
    )
    return payload, stats


def _phases_meanfield(params: ModelParams, cache: KernelCache, opts: dict):
    solution, stats = _meanfield_solution(params, cache, opts)
    mean = dict(solution.phase_rounds)
    total = sum(mean.values()) or 1.0
    payload = PhaseStatistics(
        mean=mean,
        std={phase: float("nan") for phase in mean},
        occupancy={phase: value / total for phase, value in mean.items()},
        runs=0,
    )
    return payload, stats


def _transient(method: Method):
    def handler(params: ModelParams, cache: KernelCache, opts: dict):
        if "horizon" not in opts:
            raise ParameterError(
                "quantity 'transient' needs a 'horizon' option "
                "(rounds to propagate)"
            )
        payload = _propagate_distribution_impl(
            cache.chain(params),
            int(opts["horizon"]),
            prune=opts.get("prune", 1e-12),
            method=method,
        )
        return payload, {"horizon": int(opts["horizon"])}

    return handler


#: The dispatch table: one cell per supported (quantity, method) pair.
_DISPATCH = {
    (Quantity.POTENTIAL_RATIO, Method.EXACT): _ratio_exact,
    (Quantity.POTENTIAL_RATIO, Method.DICT): _ratio_dict,
    (Quantity.POTENTIAL_RATIO, Method.BATCH): _ratio_mc(batch=True),
    (Quantity.POTENTIAL_RATIO, Method.SERIAL): _ratio_mc(batch=False),
    (Quantity.POTENTIAL_RATIO, Method.MEANFIELD): _ratio_meanfield,
    (Quantity.TIMELINE, Method.EXACT): _timeline_exact,
    (Quantity.TIMELINE, Method.BATCH): _timeline_mc(batch=True),
    (Quantity.TIMELINE, Method.SERIAL): _timeline_mc(batch=False),
    (Quantity.TIMELINE, Method.MEANFIELD): _timeline_meanfield,
    (Quantity.DOWNLOAD_TIME, Method.EXACT): _download_time_exact,
    (Quantity.DOWNLOAD_TIME, Method.BATCH): _download_time_mc(True, "batch"),
    (Quantity.DOWNLOAD_TIME, Method.SERIAL): _download_time_mc(False, "serial"),
    (Quantity.DOWNLOAD_TIME, Method.MEANFIELD): _download_time_meanfield,
    (Quantity.PHASES, Method.EXACT): _phases(Method.EXACT),
    (Quantity.PHASES, Method.BATCH): _phases(Method.BATCH),
    (Quantity.PHASES, Method.SERIAL): _phases(Method.SERIAL),
    (Quantity.PHASES, Method.MEANFIELD): _phases_meanfield,
    (Quantity.TRANSIENT, Method.EXACT): _transient(Method.EXACT),
    (Quantity.TRANSIENT, Method.DICT): _transient(Method.DICT),
}


def solve_query(query: Query, *, cache: Optional[KernelCache] = None) -> SolveResult:
    """Answer one prepared :class:`Query` (the service's work unit)."""
    handler = _DISPATCH.get((query.quantity, query.method))
    if handler is None:  # Query.make already vetoed this; belt and braces
        raise ParameterError(
            f"no engine for quantity {query.quantity.value!r} with "
            f"method {query.method.value!r}; valid methods: "
            + ", ".join(
                m.value for m in _ALLOWED_METHODS[query.quantity]
            )
        )
    payload, stats = handler(
        query.params, cache if cache is not None else shared_cache(),
        dict(query.options),
    )
    return SolveResult(
        params=query.params,
        quantity=query.quantity,
        method=query.method,
        payload=payload,
        stats=stats,
    )


def solve(
    params: ModelParameters,
    quantity: Union[Quantity, str],
    method: Union[Method, str] = Method.AUTO,
    *,
    cache: Optional[KernelCache] = None,
    **options: Any,
) -> SolveResult:
    """Compute one model quantity for one parameter set.

    The single front door that subsumes the historical entry points:

    ==================  ================================================
    ``quantity``        replaces
    ==================  ================================================
    ``potential_ratio`` ``exact_potential_ratio`` (exact/dict) and
                        ``potential_ratio_by_pieces`` (batch/serial)
    ``timeline``        ``mean_timeline`` and the exact
                        ``solve_fundamental(...).timeline``
    ``download_time``   ``mean_hitting_time`` / ``solve_fundamental``
                        moments, or the sampled total download time
    ``phases``          ``phase_duration_statistics``
    ``transient``       ``propagate_distribution``
    ==================  ================================================

    Args:
        params: any :class:`ModelParameters`; canonicalized to
            :class:`ModelParams` internally.
        quantity: a :class:`Quantity` or its name/alias.
        method: a :class:`Method` or its name/alias; ``"auto"``
            (default) picks the exact engine whenever the transient
            space fits the operator cap, batched Monte Carlo up to
            :data:`MEANFIELD_STATE_FACTOR` times the cap, and the
            mean-field ODE limit (``"meanfield"``) beyond — see
            :func:`_resolve_auto`.
        cache: the :class:`~repro.runtime.cache.KernelCache` to resolve
            chains/operators through (default: the process-shared one).
        **options: per-engine knobs — ``runs``/``seed`` for the
            Monte-Carlo methods, ``drop_tol``/``max_states`` for the
            sparse engine, ``horizon``/``prune`` for the propagation
            paths, ``rtol``/``atol``/``drain_tol``/``max_rounds``/
            ``swarm_size`` for the mean-field ODE backend.  Unknown
            options raise an actionable error.

    Returns:
        A :class:`SolveResult`; ``payload`` is the quantity's native
        result object, identical bit-for-bit to what the deprecated
        entry point would have returned.
    """
    return solve_query(Query.make(params, quantity, method, **options), cache=cache)
