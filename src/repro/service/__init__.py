"""Model-as-a-service layer: the ``repro-bt serve`` query server.

See :mod:`repro.service.server` for the protocol and
:mod:`repro.service.telemetry` for the request-side counters.
"""

from repro.service.server import (
    ServiceHandle,
    SolverService,
    run_server,
    start_background_server,
)
from repro.service.telemetry import EndpointStats, ServiceTelemetry

__all__ = [
    "SolverService",
    "ServiceHandle",
    "run_server",
    "start_background_server",
    "ServiceTelemetry",
    "EndpointStats",
]
