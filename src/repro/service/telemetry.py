"""Per-endpoint request telemetry for the query service.

Builds on the runtime's :class:`~repro.runtime.telemetry.Telemetry`
(one record accumulates the solver-side counters: solves executed,
wall seconds inside the solver pool, kernel-cache hits/misses/
evictions) and adds the HTTP-side view: per-endpoint request counts,
error counts, and latency percentiles over a bounded sliding window.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from repro.runtime.telemetry import Telemetry

__all__ = ["EndpointStats", "ServiceTelemetry"]

#: Latency samples kept per endpoint (sliding window).
LATENCY_WINDOW = 2048


def _percentile(samples, fraction: float) -> float:
    """Nearest-rank percentile of a sorted sample list."""
    if not samples:
        return 0.0
    index = min(int(fraction * len(samples)), len(samples) - 1)
    return samples[index]


@dataclass
class EndpointStats:
    """Counters for one HTTP endpoint.

    Attributes:
        requests: requests routed to the endpoint.
        errors: requests that produced a 4xx/5xx response.
        latencies_ms: sliding window of recent request latencies.
    """

    requests: int = 0
    errors: int = 0
    latencies_ms: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW), repr=False
    )

    def record(self, latency_ms: float, *, error: bool = False) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        self.latencies_ms.append(latency_ms)

    def to_dict(self) -> dict:
        ordered = sorted(self.latencies_ms)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "latency_ms": {
                "p50": round(_percentile(ordered, 0.50), 3),
                "p90": round(_percentile(ordered, 0.90), 3),
                "p99": round(_percentile(ordered, 0.99), 3),
                "max": round(ordered[-1], 3) if ordered else 0.0,
            },
        }


class ServiceTelemetry:
    """Thread-safe telemetry for one :class:`SolverService`.

    The query-level counters classify every ``/solve`` (and each solve a
    ``/sweep`` plans) as a result-cache *hit*, a *coalesced* join onto
    an identical in-flight solve, or a *miss* that ran the solver; the
    embedded :class:`~repro.runtime.telemetry.Telemetry` record carries
    the solver-side accounting in the same shape the ``--timing`` CLI
    path uses.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.runtime = Telemetry(workers=1)
        self.query_hits = 0
        self.query_misses = 0
        self.query_coalesced = 0
        self.endpoints: Dict[str, EndpointStats] = {}

    def record_query(self, outcome: str) -> None:
        """Count one planned query: ``hit``/``miss``/``coalesced``."""
        with self._lock:
            if outcome == "hit":
                self.query_hits += 1
            elif outcome == "coalesced":
                self.query_coalesced += 1
            else:
                self.query_misses += 1

    def record_solve(self, wall_seconds: float, cache_delta) -> None:
        """Fold one executed solve into the runtime record."""
        with self._lock:
            self.runtime.tasks += 1
            self.runtime.wall_time += wall_seconds
            self.runtime.cache_hits += cache_delta.hits
            self.runtime.cache_misses += cache_delta.misses
            self.runtime.sparse_cache_hits += cache_delta.sparse_hits
            self.runtime.sparse_cache_misses += cache_delta.sparse_misses
            self.runtime.cache_evictions += cache_delta.evictions

    def record_request(
        self, endpoint: str, latency_ms: float, *, error: bool = False
    ) -> None:
        with self._lock:
            stats = self.endpoints.get(endpoint)
            if stats is None:
                stats = self.endpoints[endpoint] = EndpointStats()
            stats.record(latency_ms, error=error)

    def to_dict(self) -> dict:
        with self._lock:
            total = self.query_hits + self.query_misses + self.query_coalesced
            return {
                "queries": {
                    "total": total,
                    "hits": self.query_hits,
                    "misses": self.query_misses,
                    "coalesced": self.query_coalesced,
                    "hit_rate": (
                        self.query_hits / total if total else 0.0
                    ),
                },
                "solver": self.runtime.to_dict(),
                "endpoints": {
                    name: stats.to_dict()
                    for name, stats in sorted(self.endpoints.items())
                },
            }
