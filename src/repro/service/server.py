"""The ``repro-bt serve`` asyncio query service.

A stdlib-only model-as-a-service layer over :func:`repro.api.solve`:
JSON over HTTP/1.1 on a handcoded :mod:`asyncio` protocol (no web
framework — the container ships none, and the protocol surface is four
endpoints).  Solves run on a small thread pool so the event loop stays
responsive while SciPy factorizes; identical concurrent queries are
**coalesced** onto one in-flight solve via their
:meth:`~repro.api.Query.cache_key`, and completed results are kept in a
bounded LRU so a warm query never re-enters the solver at all.

Endpoints:

========  ==========  =================================================
``GET``   ``/health``  liveness + uptime.
``GET``   ``/stats``   service telemetry (query hits/misses/coalesced,
                       per-endpoint latency percentiles) + kernel-cache
                       counters (entries, bytes, evictions).
``POST``  ``/solve``   one :class:`~repro.api.Query`
                       (``{"params": {...}, "quantity": "...",
                       "method": "auto", "options": {...}}``).
``POST``  ``/sweep``   a parameter grid planned as one blocked set of
                       solves (``{"params": {...}, "quantity": ...,
                       "grid": {"field": [values...]}}``); grid points
                       that hash to the same query are solved once.
========  ==========  =================================================
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api import Query, solve_query
from repro.errors import ParameterError
from repro.runtime.cache import KernelCache, shared_cache
from repro.service.telemetry import ServiceTelemetry

__all__ = [
    "SolverService",
    "ServiceHandle",
    "start_background_server",
    "run_server",
]

#: Upper bound on request bodies (a phi pmf at B=200 is ~5 KB; 8 MiB is
#: generous for any legitimate sweep grid).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest number of grid points one /sweep may plan.
MAX_SWEEP_POINTS = 4096

#: Completed query results kept for warm hits.
DEFAULT_MAX_RESULTS = 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class SolverService:
    """Query planner/executor behind the HTTP layer.

    Owns a :class:`~repro.runtime.cache.KernelCache` (chains and
    compiled operators), a bounded result cache keyed by
    :meth:`Query.cache_key`, a single-flight table coalescing identical
    concurrent queries, and a thread pool the blocking solves run on.
    Usable directly (``await service.solve_async(query)``) without the
    HTTP layer — the benchmark harness does exactly that.
    """

    def __init__(
        self,
        *,
        cache: Optional[KernelCache] = None,
        max_workers: int = 2,
        max_results: int = DEFAULT_MAX_RESULTS,
    ) -> None:
        if max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
        if max_results < 1:
            raise ParameterError(f"max_results must be >= 1, got {max_results}")
        self.cache = cache if cache is not None else shared_cache()
        self.telemetry = ServiceTelemetry()
        self.max_results = max_results
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-solve"
        )
        self._results: "Dict[str, dict]" = {}
        self._results_order: list = []
        self._inflight: "Dict[str, asyncio.Future]" = {}
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.solve_count = 0  # executed solves (not hits/coalesced joins)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def _solve_blocking(self, query: Query) -> dict:
        """Run one solve on the pool thread; returns the JSON view."""
        before = self.cache.stats()
        start = time.perf_counter()
        result = solve_query(query, cache=self.cache)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.solve_count += 1
        self.telemetry.record_solve(elapsed, self.cache.stats().delta(before))
        return result.to_dict()

    def _cache_result(self, key: str, payload: dict) -> None:
        with self._lock:
            if key not in self._results:
                self._results[key] = payload
                self._results_order.append(key)
                while len(self._results_order) > self.max_results:
                    evicted = self._results_order.pop(0)
                    self._results.pop(evicted, None)

    async def solve_async(self, query: Query) -> Tuple[dict, str]:
        """Answer one query; returns ``(json_payload, outcome)``.

        ``outcome`` is ``"hit"`` (result cache), ``"coalesced"`` (joined
        an identical in-flight solve), or ``"miss"`` (ran the solver).
        """
        key = query.cache_key()
        loop = asyncio.get_running_loop()
        with self._lock:
            cached = self._results.get(key)
            if cached is not None:
                outcome = "hit"
            else:
                inflight = self._inflight.get(key)
                if inflight is not None:
                    outcome = "coalesced"
                else:
                    outcome = "miss"
                    inflight = loop.create_future()
                    self._inflight[key] = inflight
        self.telemetry.record_query(outcome)
        if outcome == "hit":
            return cached, outcome
        if outcome == "coalesced":
            return await asyncio.shield(inflight), outcome

        try:
            payload = await loop.run_in_executor(
                self._pool, self._solve_blocking, query
            )
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            if not inflight.done():
                inflight.set_exception(exc)
                # A coalesced waiter may or may not exist; if none ever
                # awaits, silence the "exception never retrieved" log.
                inflight.exception()
            raise
        self._cache_result(key, payload)
        with self._lock:
            self._inflight.pop(key, None)
        if not inflight.done():
            inflight.set_result(payload)
        return payload, outcome

    # ------------------------------------------------------------------
    # Sweep planning
    # ------------------------------------------------------------------
    def plan_sweep(self, body: Mapping[str, Any]) -> list:
        """Expand a ``/sweep`` body into ``(grid_point, Query)`` pairs.

        The ``grid`` maps parameter-field names to value lists; the
        cartesian product over them is applied on top of the base
        ``params``.  Validation errors raise
        :class:`~repro.errors.ParameterError` (mapped to HTTP 400).
        """
        if not isinstance(body, Mapping):
            raise ParameterError("sweep body must be a JSON object")
        grid = body.get("grid")
        if not isinstance(grid, Mapping) or not grid:
            raise ParameterError(
                "sweep body needs a non-empty 'grid' object mapping "
                "parameter fields to value lists"
            )
        for name, values in grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ParameterError(
                    f"grid field {name!r} must map to a non-empty list"
                )
        names = sorted(grid)
        points = 1
        for name in names:
            points *= len(grid[name])
        if points > MAX_SWEEP_POINTS:
            raise ParameterError(
                f"sweep grid has {points} points; the limit is "
                f"{MAX_SWEEP_POINTS}"
            )
        base = dict(body.get("params") or {})
        quantity = body.get("quantity")
        if quantity is None:
            raise ParameterError("sweep body must carry 'quantity'")
        method = body.get("method") or "auto"
        options = dict(body.get("options") or {})
        plan = []
        for combo in itertools.product(*(grid[name] for name in names)):
            point = dict(zip(names, combo))
            request = {
                "params": {**base, **point},
                "quantity": quantity,
                "method": method,
                "options": options,
            }
            plan.append((point, Query.from_request(request)))
        return plan

    async def sweep_async(self, body: Mapping[str, Any]) -> dict:
        """Plan and execute one sweep as a blocked set of solves.

        Grid points whose queries hash identically share one solve (and
        every point past the first classifies as a hit or coalesced
        join), so a sweep over a redundant grid costs its *distinct*
        queries only.
        """
        plan = self.plan_sweep(body)
        outcomes = await asyncio.gather(
            *(self.solve_async(query) for _point, query in plan)
        )
        results = [
            {"grid": point, "outcome": outcome, **payload}
            for (point, _query), (payload, outcome) in zip(plan, outcomes)
        ]
        return {
            "count": len(results),
            "distinct": len({query.cache_key() for _p, query in plan}),
            "results": results,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        cache_stats = self.cache.stats()
        payload = self.telemetry.to_dict()
        payload["uptime_s"] = round(time.monotonic() - self._started, 3)
        payload["kernel_cache"] = {
            "entries": cache_stats.size,
            "bytes": self.cache.current_bytes(),
            "hits": cache_stats.hits,
            "misses": cache_stats.misses,
            "sparse_hits": cache_stats.sparse_hits,
            "sparse_misses": cache_stats.sparse_misses,
            "evictions": cache_stats.evictions,
            "max_entries": self.cache.max_entries,
            "max_bytes": self.cache.max_bytes,
        }
        payload["result_cache"] = {
            "entries": len(self._results),
            "max_entries": self.max_results,
        }
        payload["solves"] = self.solve_count
        return payload

    def close(self) -> None:
        self._pool.shutdown(wait=False)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; ``None`` when the peer hung up."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ParameterError(f"malformed request line: {parts}")
    method, path, version = parts
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    if length > MAX_BODY_BYTES:
        raise ParameterError(
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit"
        )
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, version, headers, body


def _encode_response(status: int, payload: dict, *, keep_alive: bool) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def _parse_json(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ParameterError(f"request body is not valid JSON: {exc}") from exc


class _HttpServer:
    """Connection handling + routing around one :class:`SolverService`."""

    def __init__(self, service: SolverService) -> None:
        self.service = service

    async def dispatch(self, method: str, path: str, body: bytes):
        service = self.service
        if path == "/health":
            if method != "GET":
                return 405, {"error": "use GET /health"}
            return 200, {
                "status": "ok",
                "uptime_s": round(time.monotonic() - service._started, 3),
            }
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET /stats"}
            return 200, service.stats()
        if path == "/solve":
            if method != "POST":
                return 405, {"error": "use POST /solve"}
            query = Query.from_request(_parse_json(body))
            start = time.perf_counter()
            payload, outcome = await service.solve_async(query)
            elapsed_ms = 1000.0 * (time.perf_counter() - start)
            return 200, {
                **payload,
                "outcome": outcome,
                "elapsed_ms": round(elapsed_ms, 3),
            }
        if path == "/sweep":
            if method != "POST":
                return 405, {"error": "use POST /sweep"}
            return 200, await service.sweep_async(_parse_json(body))
        return 404, {
            "error": f"unknown path {path!r}; endpoints: GET /health, "
            "GET /stats, POST /solve, POST /sweep"
        }

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ParameterError as exc:
                    writer.write(
                        _encode_response(
                            400, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, version, headers, body = request
                keep_alive = (
                    version != "HTTP/1.0"
                    and headers.get("connection", "").lower() != "close"
                )
                endpoint = f"{method} {path}"
                start = time.perf_counter()
                try:
                    status, payload = await self.dispatch(method, path, body)
                except ParameterError as exc:
                    status, payload = 400, {"error": str(exc)}
                except Exception as exc:  # noqa: BLE001 - boundary
                    status, payload = 500, {
                        "error": f"{type(exc).__name__}: {exc}"
                    }
                latency_ms = 1000.0 * (time.perf_counter() - start)
                self.service.telemetry.record_request(
                    endpoint, latency_ms, error=status >= 400
                )
                writer.write(
                    _encode_response(status, payload, keep_alive=keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


class ServiceHandle:
    """A running server on a background thread (tests and benches).

    Attributes:
        service: the underlying :class:`SolverService`.
        host / port: the bound address (``port`` is the real one even
            when started with port 0).
    """

    def __init__(self, service: SolverService, host: str) -> None:
        self.service = service
        self.host = host
        self.port: Optional[int] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    async def _amain(self, port: int) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        http = _HttpServer(self.service)
        server = await asyncio.start_server(
            http.handle_connection, self.host, port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()

    def _run(self, port: int) -> None:
        try:
            asyncio.run(self._amain(port))
        except BaseException as exc:  # pragma: no cover - startup failure
            self._error = exc
            self._started.set()

    def start(self, port: int = 0) -> "ServiceHandle":
        self._thread = threading.Thread(
            target=self._run, args=(port,), daemon=True,
            name="repro-serve",
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")
        return self

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.close()


def start_background_server(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[SolverService] = None,
    **service_kwargs: Any,
) -> ServiceHandle:
    """Start a server on a daemon thread; returns its handle.

    ``port=0`` binds an ephemeral port (read it off ``handle.port``).
    """
    if service is None:
        service = SolverService(**service_kwargs)
    return ServiceHandle(service, host).start(port)


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8750,
    service: Optional[SolverService] = None,
    **service_kwargs: Any,
) -> None:
    """Run the service in the foreground (the ``repro-bt serve`` path)."""
    if service is None:
        service = SolverService(**service_kwargs)

    async def _main() -> None:
        http = _HttpServer(service)
        server = await asyncio.start_server(http.handle_connection, host, port)
        bound = server.sockets[0].getsockname()
        print(f"repro-bt serve: listening on http://{bound[0]}:{bound[1]}")
        print(
            "endpoints: GET /health, GET /stats, POST /solve, POST /sweep"
        )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("repro-bt serve: shutting down")
    finally:
        service.close()
