"""Figure 1(a): potential-set ratio vs pieces downloaded (model, PSS sweep).

Paper setting: B = 200, PSS in {5, 10, 25, 40}.  Expected shape: the
normalised potential-set size rises from ~0.5, plateaus near 1 around
mid-download, and declines toward the end; small peer sets track lower.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_checks
from repro.analysis.validation import potential_ratio_shape
from repro.experiments.fig1a import run_fig1a


def bench_workload():
    return run_fig1a(
        pss_values=(5, 10, 25, 40), num_pieces=120, runs=24, seed=0
    )


def test_fig1a_potential_set(benchmark):
    result = run_once(benchmark, bench_workload)
    print()
    print(result.format())

    # Shape assertions on the largest peer set (the paper: "the model
    # validates the results with a high accuracy for higher values of
    # the peer set size").
    checks = potential_ratio_shape(result.pieces, result.ratios[40])
    print(format_checks("Figure 1(a) shape [PSS=40]", checks))
    assert checks["mid_high"], checks
    assert checks["rises_from_start"], checks
    assert checks["falls_to_end"], checks

    # Small peer sets visit emptiness (bootstrap / last phases occur).
    small = result.ratios[5]
    finite = small[np.isfinite(small)]
    assert finite.min() < 0.3, "PSS=5 should visit near-empty potential sets"
