"""Performance: sharded swarm backend — speedup floor and the 1e6 run.

Two benches:

* **speedup + scaling** — the soa 100k-peer workload against the
  sharded backend at 2/4/8 shards, with the shared-memory fabric's
  bytes/round recorded per curve point.  The shard count matched to the
  box's core count must be at least 2x the single-process soa engine;
  the floor only applies on multi-core boxes (sharding buys nothing but
  IPC overhead on one core), but the measured curve is recorded either
  way so single-core CI still tracks the trajectory, and the 2-shard
  ``overhead_ratio`` is gated unconditionally against
  ``OVERHEAD_CEILING`` so fabric regressions fail even on one core.
* **million-peer flash crowd** — the tentpole scale: a 10^6-peer flash
  crowd over 8 shards, recording end-to-end rounds/s and rounds/s/peer
  to ``BENCH_perf.json`` (``simulator_sharded`` section).  The run's
  level-advance transient is handed to the mean-field layer the way the
  paper's multiphased pipeline intends: the first half of the simulated
  transient calibrates the fluid velocity field, the
  :class:`SwarmMeanField` integration predicts the second half, and the
  per-round mean-level error (in units of the file size) is recorded
  and loosely bounded.  The entropy transient endpoints ride along for
  the stability-layer trajectory.

Rounds-per-second includes worker spawn and slab setup, so the numbers
are honest end-to-end throughput for short runs.
"""

import os
import time

import numpy as np
from scipy.stats import binom

from benchmarks.bench_perf_soa import swarm_config
from benchmarks.perf_report import record_perf
from repro.core.meanfield import SwarmMeanField
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm, run_swarm

SPEEDUP_PEERS = 100_000
SPEEDUP_ROUNDS = 5
SPEEDUP_FLOOR = 2.0
#: Single-core honesty gate: with no cores to shard across, the whole
#: fabric (shm planes + pipe control plane + lockstep barrier) must cost
#: at most 15% over the single-process soa engine at 2 shards.
OVERHEAD_CEILING = 1.15
SHARD_CURVE = (2, 4, 8)

MILLION = 1_000_000
MILLION_ROUNDS = 8
MILLION_SHARDS = 8
MILLION_PIECES = 20
MILLION_FILL = 0.5
#: Mean-level prediction error bound, as a fraction of the file size.
LEVEL_RELERR_FLOOR = 0.10


def _cores() -> int:
    """Usable core count, preferring the scheduler's view of this
    process (``process_cpu_count`` on 3.13+, the affinity mask before
    that) over the box-wide ``cpu_count``."""
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:  # pragma: no cover - 3.13+
        return process_cpu_count() or 1
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _rounds_per_second(peers, rounds, backend, **swarm_kwargs):
    config = swarm_config(peers, rounds)
    metrics = MetricsCollector(config.max_conns, entropy_every=10)
    start = time.perf_counter()
    result = run_swarm(config, metrics=metrics, backend=backend, **swarm_kwargs)
    elapsed = time.perf_counter() - start
    assert result.total_rounds == rounds
    assert result.backend == backend
    return rounds / elapsed, result


def test_perf_sharded_speedup_over_soa_backend():
    """The CI gates: sharded must reach >= 2x soa at 100k peers when the
    box has cores to shard across, and must stay within
    ``OVERHEAD_CEILING`` of soa at 2 shards even when it doesn't."""
    cores = _cores()
    soa, _ = _rounds_per_second(SPEEDUP_PEERS, SPEEDUP_ROUNDS, "soa")
    curve = {}
    bytes_per_round = {}
    for shards in SHARD_CURVE:
        rps, result = _rounds_per_second(
            SPEEDUP_PEERS, SPEEDUP_ROUNDS, "sharded", shards=shards
        )
        curve[str(shards)] = round(rps, 3)
        bytes_per_round[str(shards)] = round(
            result.comms["bytes_per_round"], 1
        )
        print(
            f"\nsharded x{shards}: {curve[str(shards)]} rounds/s, "
            f"{bytes_per_round[str(shards)]:.0f} fabric bytes/round"
        )
    # Match one shard per *physical* core: ``cores`` counts logical CPUs
    # (SMT doubles them), so target ``cores // 2`` shards and round down
    # onto the measured powers-of-two curve.
    matched = max(2, min(8, cores // 2))
    while str(matched) not in curve:
        matched -= 1
    speedup = curve[str(matched)] / soa
    # Single-core honesty: on one core the "speedup" is really the
    # fabric's overhead, so label (and gate) it as such.
    overhead_ratio = round(soa / curve["2"], 2)
    print(
        f"\n{SPEEDUP_PEERS} peers on {cores} core(s): soa {soa:.3f} rounds/s, "
        f"sharded x{matched} {curve[str(matched)]:.3f} rounds/s "
        f"-> {speedup:.2f}x (x2 overhead ratio {overhead_ratio:.2f})"
    )
    record_perf("simulator_sharded_speedup", {
        "peers": SPEEDUP_PEERS,
        "rounds": SPEEDUP_ROUNDS,
        "cores": cores,
        "soa_rounds_per_second": round(soa, 3),
        "sharded_rounds_per_second": curve,
        "fabric_bytes_per_round": bytes_per_round,
        "matched_shards": matched,
        "speedup": round(speedup, 2),
        "floor": SPEEDUP_FLOOR,
        "overhead_ratio": overhead_ratio,
        "overhead_ceiling": OVERHEAD_CEILING,
    })
    assert overhead_ratio <= OVERHEAD_CEILING, (
        f"2-shard fabric overhead is {overhead_ratio:.2f}x soa at "
        f"{SPEEDUP_PEERS} peers (ceiling: {OVERHEAD_CEILING}x)"
    )
    if cores < 2 * matched:
        import pytest

        pytest.skip(
            f"speedup floor needs >= {2 * matched} cores for x{matched} "
            f"shards (box has {cores}); curve recorded without enforcement"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"sharded backend is only {speedup:.2f}x the soa backend at "
        f"{SPEEDUP_PEERS} peers on {cores} cores (floor: {SPEEDUP_FLOOR}x)"
    )


def million_config() -> SimConfig:
    """A 10^6-peer flash crowd: everyone arrives at once, half-filled."""
    return SimConfig(
        num_pieces=MILLION_PIECES,
        max_conns=4,
        ns_size=15,
        arrival_process="flash",
        arrival_rate=0.0,
        flash_size=MILLION,
        initial_leechers=0,
        initial_distribution="uniform",
        initial_fill=MILLION_FILL,
        num_seeds=1_000,
        seed_upload_slots=2,
        completed_become_seeds=0.0,
        piece_selection="rarest",
        max_time=float(MILLION_ROUNDS),
        seed=9,
    )


def test_perf_sharded_million_peer_flash_crowd():
    """The tentpole run: 10^6 peers, 8 shards, mean-field transient."""
    config = million_config()
    metrics = MetricsCollector(config.max_conns, entropy_every=1)
    start = time.perf_counter()
    swarm = Swarm(
        config, backend="sharded", shards=MILLION_SHARDS, metrics=metrics
    )
    mean_level = []
    try:
        while swarm.step_round():
            # The coordinator's per-shard ledger gives the global piece
            # total each round without serializing the slabs: the mean
            # leecher level is the transient handed to the fluid layer.
            pieces = n_leech = n_seeds = 0
            for state in swarm._shard_state:
                pieces += int(np.sum(state["piece_counts"]))
                n_leech += state["n_leech"]
                n_seeds += state["n_seeds"]
            leech_pieces = pieces - n_seeds * config.num_pieces
            mean_level.append(leech_pieces / max(n_leech, 1))
        result = swarm.run()
    finally:
        swarm.close()
    elapsed = time.perf_counter() - start
    assert result.total_rounds == MILLION_ROUNDS

    rps = MILLION_ROUNDS / elapsed
    print(
        f"\n{MILLION} peers x{MILLION_SHARDS} shards: {rps:.3f} rounds/s "
        f"({elapsed:.0f}s), {len(metrics.completed)} completed"
    )

    # Multiphased handoff: the first half of the simulated transient
    # calibrates the fluid velocity, the mean-field integration predicts
    # the rest, anchored at round 1.
    level = np.asarray(mean_level)
    rounds = np.arange(1, len(level) + 1, dtype=float)
    half = len(level) // 2
    velocity = max((level[half - 1] - level[0]) / (half - 1), 1e-6)
    field = SwarmMeanField(
        level_velocity=np.full(config.num_pieces, velocity),
        arrival_rate=0.0,
        efficiency=1.0,
    )
    x0 = MILLION * binom.pmf(
        np.arange(config.num_pieces), config.num_pieces, MILLION_FILL
    )
    trajectory = field.integrate(
        float(MILLION_ROUNDS),
        x0=x0,
        y0=float(config.num_seeds),
        points=4 * MILLION_ROUNDS + 1,
    )
    levels = np.arange(config.num_pieces, dtype=float)
    mf_level = (
        (trajectory.leechers * levels[:, None]).sum(axis=0)
        / np.maximum(trajectory.total_leechers(), 1.0)
    )
    predicted = level[0] + np.interp(rounds, trajectory.times, mf_level)
    predicted -= np.interp(1.0, trajectory.times, mf_level)
    relerr = float(
        np.max(np.abs(predicted[half:] - level[half:])) / config.num_pieces
    )
    _, entropy_values = metrics.entropy_arrays()
    print(
        f"calibrated velocity {velocity:.3f} levels/round, "
        f"mean-field level relerr {relerr:.4f}, "
        f"entropy {entropy_values[0]:.3f} -> {entropy_values[-1]:.3f}"
    )

    record_perf("simulator_sharded", {
        "peers": MILLION,
        "rounds": MILLION_ROUNDS,
        "shards": MILLION_SHARDS,
        "cores": _cores(),
        "num_pieces": config.num_pieces,
        "rounds_per_second": round(rps, 3),
        "rounds_per_second_per_peer": rps / MILLION,
        "completed": len(metrics.completed),
        "bytes_broadcast": result.comms["bytes_broadcast"],
        "bytes_migrated": result.comms["bytes_migrated"],
        "bytes_per_round": round(result.comms["bytes_per_round"], 1),
        "calibrated_velocity": round(float(velocity), 4),
        "meanfield_level_relerr": round(relerr, 4),
        "entropy_start": round(float(entropy_values[0]), 4),
        "entropy_end": round(float(entropy_values[-1]), 4),
        "level_relerr_floor": LEVEL_RELERR_FLOOR,
    })
    # Loose transient agreement: the fluid prediction of the back half
    # must track the simulated mean level to within 10% of the file.
    assert relerr < LEVEL_RELERR_FLOOR, (
        f"mean-field transient diverged: relerr {relerr:.4f} "
        f"(floor {LEVEL_RELERR_FLOOR})"
    )
    # The run must actually be at the tentpole scale and finish.
    assert result.backend == "sharded"
    assert rps > 0.0
