"""Performance: sparse exact engine vs dict-based propagation.

Two measurements, recorded in ``BENCH_perf.json`` (section
``exact_engine``):

* **Equivalence-scale speedup** — :func:`propagate_distribution` on a
  parameter set both engines can run (``B=24, k=3, s=12``): the CSR
  mat-vec loop must beat the ``Dict[State, float]`` reference by at
  least :data:`MIN_SPEEDUP`.
* **Paper-scale budget** — the full ``B=200, k=7, s=50`` pipeline
  (compile the operator, fundamental-matrix solve for mean/variance,
  then transient propagation to >99.9 % absorption) must finish within
  :data:`MAX_PAPER_SECONDS` single-core.  The dict path cannot run this
  scale at all; before the sparse engine, paper-scale figures had to
  fall back to Monte-Carlo.

Numerical agreement is not checked here beyond sanity — the three-way
equivalence suite (``tests/core/test_sparse.py``) pins sparse vs dict
vs Monte-Carlo down to tolerance.
"""

import time

import numpy as np

from benchmarks.perf_report import record_perf
from repro.core.chain import DownloadChain
from repro.core.exact import _propagate_distribution_impl
from repro.core.parameters import DEFAULT_PARAMETERS, ModelParameters

#: Largest parameter set the dict reference propagates in sane time.
EQUIV_PARAMS = ModelParameters(
    num_pieces=24, max_conns=3, ns_size=12, alpha=0.2, gamma=0.2
)
EQUIV_HORIZON = 120

#: Acceptance floor: CSR propagation vs the dict loop on EQUIV_PARAMS.
MIN_SPEEDUP = 20.0

#: Acceptance ceiling for the full paper-scale exact pipeline.
MAX_PAPER_SECONDS = 30.0


def propagate_dict(chain: DownloadChain):
    return _propagate_distribution_impl(chain, EQUIV_HORIZON, method="dict")


def propagate_sparse(chain: DownloadChain):
    return _propagate_distribution_impl(chain, EQUIV_HORIZON, method="sparse")


def test_perf_exact_speedup(benchmark):
    chain = DownloadChain(EQUIV_PARAMS)
    # Warm the compiled operator (and the dict path's kernel tables)
    # outside the timings so both engines are measured on propagation.
    sparse_result = propagate_sparse(chain)

    dict_start = time.perf_counter()
    dict_result = propagate_dict(chain)
    dict_seconds = time.perf_counter() - dict_start

    benchmark.pedantic(
        propagate_sparse, args=(chain,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    sparse_seconds = benchmark.stats.stats.mean

    # Sanity: both engines describe the same transient.
    tv_distance = float(
        np.abs(dict_result.completion_pmf - sparse_result.completion_pmf).sum()
    )
    assert tv_distance < 1e-8
    speedup = dict_seconds / sparse_seconds

    operator = chain.kernel.sparse_operator()
    states_per_second = (
        operator.num_states * EQUIV_HORIZON / sparse_seconds
    )
    print(
        f"\nsparse propagation: {sparse_seconds:.4f}s vs dict "
        f"{dict_seconds:.3f}s over horizon={EQUIV_HORIZON} on "
        f"{operator.num_states} states -> {speedup:.1f}x "
        f"({states_per_second / 1e6:.1f}M state-rounds/s)"
    )

    # Paper scale: the whole exact pipeline, timed stage by stage.
    paper_chain = DownloadChain(DEFAULT_PARAMETERS)
    compile_start = time.perf_counter()
    paper_operator = paper_chain.kernel.sparse_operator()
    compile_seconds = time.perf_counter() - compile_start

    solve_start = time.perf_counter()
    solution = paper_operator.solution()
    solve_seconds = time.perf_counter() - solve_start
    mean = solution.mean_download_time
    std = solution.std_download_time

    horizon = max(int(mean + 10.0 * std), int(2.0 * mean))
    propagate_start = time.perf_counter()
    transient = _propagate_distribution_impl(paper_chain, horizon, method="sparse")
    propagate_seconds = time.perf_counter() - propagate_start
    paper_seconds = compile_seconds + solve_seconds + propagate_seconds

    assert transient.completion_cdf[-1] > 0.999
    assert abs(transient.mean_download_time() - mean) < 0.5
    paper_states_per_second = (
        paper_operator.num_states * horizon / propagate_seconds
    )
    print(
        f"paper scale (B={DEFAULT_PARAMETERS.num_pieces}): compile "
        f"{compile_seconds:.2f}s + solve {solve_seconds:.2f}s + "
        f"propagate {propagate_seconds:.2f}s over {horizon} rounds "
        f"({paper_states_per_second / 1e6:.1f}M state-rounds/s); "
        f"mean={mean:.2f} std={std:.2f}"
    )

    record_perf("exact_engine", {
        "equiv_num_pieces": EQUIV_PARAMS.num_pieces,
        "equiv_states": operator.num_states,
        "equiv_horizon": EQUIV_HORIZON,
        "dict_seconds": round(dict_seconds, 4),
        "sparse_seconds": round(sparse_seconds, 5),
        "speedup": round(speedup, 1),
        "states_per_second": round(states_per_second, 0),
        "paper_num_pieces": DEFAULT_PARAMETERS.num_pieces,
        "paper_states": paper_operator.num_states,
        "paper_compile_seconds": round(compile_seconds, 3),
        "paper_solve_seconds": round(solve_seconds, 3),
        "paper_propagate_seconds": round(propagate_seconds, 3),
        "paper_total_seconds": round(paper_seconds, 3),
        "paper_horizon": horizon,
        "paper_states_per_second": round(paper_states_per_second, 0),
        "paper_mean_download_time": round(mean, 4),
        "paper_std_download_time": round(std, 4),
    })
    assert speedup >= MIN_SPEEDUP
    assert paper_seconds < MAX_PAPER_SECONDS
