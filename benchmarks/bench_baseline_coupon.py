"""Baseline: the coupon replication system vs. BitTorrent.

The paper's related-work contrast (Section 2.2): the coupon system
samples encounters uniformly from the whole swarm with a single
connection, so encounters fail with positive probability and the k >= 2
efficiency gain is unavailable.  Same workload, both systems.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.baselines.coupon import run_coupon_system
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm

NUM_PIECES = 40
ARRIVAL = 2.0
ROUNDS = 150


def bench_workload():
    config = SimConfig(
        num_pieces=NUM_PIECES, max_conns=4, ns_size=25,
        arrival_process="poisson", arrival_rate=ARRIVAL,
        initial_leechers=50, initial_distribution="uniform",
        initial_fill=0.5, num_seeds=1, seed_upload_slots=2,
        optimistic_unchoke_prob=0.5, piece_selection="rarest",
        connection_setup_prob=0.8, connection_failure_prob=0.1,
        max_time=float(ROUNDS), seed=5,
    )
    metrics = MetricsCollector(config.max_conns, entropy_every=10)
    Swarm(config, metrics=metrics).run()
    coupon = run_coupon_system(
        NUM_PIECES, ROUNDS, arrival_rate=ARRIVAL, initial_peers=50, seed=5
    )
    return metrics, coupon


def test_baseline_coupon(benchmark):
    bt, coupon = run_once(benchmark, bench_workload)
    print()
    print(format_table(
        ["system", "completed", "mean sojourn", "efficiency", "failed enc."],
        [
            ["BitTorrent (k=4, NS)", len(bt.completed),
             round(bt.mean_download_duration(), 1),
             round(bt.efficiency(), 3), "-"],
            ["Coupon (k=1, global)", coupon.completed,
             round(coupon.mean_sojourn, 1), round(coupon.efficiency, 3),
             f"{coupon.failed_encounter_fraction:.1%}"],
        ],
    ))

    # The structural differences the paper argues:
    assert coupon.failed_encounter_fraction > 0.2, (
        "whole-swarm random encounters must fail often"
    )
    assert bt.mean_download_duration() < coupon.mean_sojourn, (
        "BitTorrent's multi-connection, NS-gated trading must finish faster"
    )
    assert bt.efficiency() > coupon.efficiency
