"""Figure 3/4(d): shaking the peer set vs the last-piece problem.

Paper finding: re-randomising the neighbor set at 90% completion
("shaking") sharply reduces the time-to-download of the last blocks.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3d import run_fig3d


def bench_workload():
    return run_fig3d(
        num_pieces=120,
        window=10,
        initial_leechers=50,
        arrival_rate=1.0,
        max_time=500.0,
        seed=0,
    )


def test_fig3d_shake(benchmark):
    result = run_once(benchmark, bench_workload)
    print()
    print(result.format())

    normal = result.ttd["normal"]
    shake = result.ttd["shake"]

    # The last-piece problem exists: normal TTD grows toward the end.
    assert normal[-1] > 1.5 * normal[0], (
        "normal protocol must show a TTD ramp on the final blocks"
    )
    # Shaking flattens the tail (the figure's headline contrast).
    assert shake[-1] < normal[-1], "shaking must reduce the last-block TTD"
    tail_gain = normal[-3:].mean() / shake[-3:].mean()
    print(f"tail TTD ratio normal/shake = {tail_gain:.2f}x")
    assert tail_gain > 1.1

    assert result.completed["normal"] > 20
    assert result.completed["shake"] > 20
