"""Figure 3/4(a): efficiency vs maximum connections, model vs simulation.

Paper finding: efficiency rises sharply from k = 1 to k = 2 and gains
little beyond; the balance-equation model upper-bounds the simulation.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_checks
from repro.analysis.validation import efficiency_shape
from repro.experiments.fig3a import run_fig3a


def bench_workload():
    return run_fig3a(
        k_values=tuple(range(1, 9)),
        num_pieces=60,
        seed=0,
        sim_kwargs={
            "ns_size": 30,
            "initial_leechers": 80,
            "arrival_rate": 4.0,
            "max_time": 120.0,
        },
    )


def test_fig3a_efficiency(benchmark):
    result = run_once(benchmark, bench_workload)
    print()
    print(result.format())

    model_checks = efficiency_shape(result.k_values, result.model_eta)
    print(format_checks("model efficiency shape", model_checks))
    assert model_checks["first_gain_positive"], model_checks
    assert model_checks["first_gain_dominates"], model_checks
    assert model_checks["plateau_after_two"], model_checks

    # Simulation: the k=1 -> 2 jump exists and later ks stay in a band.
    sim = result.sim_eta
    assert sim[1] > sim[0] + 0.03, "sim efficiency must jump from k=1 to k=2"
    assert sim[2:].max() - sim[2:].min() < 0.2, "sim efficiency plateaus"

    # Model upper-bounds the simulation (small tolerance for noise).
    assert (result.model_eta >= result.sim_eta - 0.05).all()
