"""Extension: the stability phase boundary (critical B vs. arrival rate).

The paper's conclusion — "the stability of [the] BitTorrent protocol
depends heavily on the number of pieces a file is divided into and the
arrival rate of clients" — stated as a measurable boundary: for each
arrival rate, the minimal B at which the high-skew swarm recovers.
The boundary must rise with load; the first-order drift model tracks it
at low-to-moderate load.
"""

from benchmarks.conftest import run_once
from repro.stability.critical import phase_boundary

RATES = (5.0, 12.0, 20.0)


def bench_workload():
    return phase_boundary(
        RATES, initial_leechers=120, max_time=70.0, seed=0
    )


def test_extension_phase_boundary(benchmark):
    boundary = run_once(benchmark, bench_workload)
    print()
    print(boundary.format())

    criticals = [p.critical_b_sim for p in boundary.points]
    # The boundary rises (weakly) with the offered load.
    assert criticals == sorted(criticals), (
        "critical B must not decrease with arrival rate"
    )
    assert criticals[-1] > criticals[0], (
        "higher load must demand strictly more pieces for stability"
    )
    # The paper's B = 3 sits on the unstable side everywhere...
    assert all(c > 3 for c in criticals)
    # ...and B = 10 on the stable side at the Figure 3/4(b,c)-like loads.
    assert criticals[0] <= 10
