"""CI guard: fail when a recorded perf headline regresses.

Compares dotted keys in a freshly generated ``BENCH_perf.json`` against
the copy committed at a baseline git ref (``HEAD`` by default — in CI
that is the commit under test, whose checked-in numbers predate the
bench rerun).  A key regresses when the current value drops more than
``--tolerance`` (default 20%) below the baseline; higher is always
fine, so the guard never blocks a speedup.

Missing baselines are skipped with a note instead of failing: a fresh
repo, a renamed section, or a first-ever bench run must not break CI.

Usage (CI's shard-smoke job)::

    python benchmarks/check_bench_regression.py \
        --current BENCH_perf.json \
        --key simulator_sharded.rounds_per_second
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

__all__ = ["main"]

DEFAULT_KEYS = ["simulator_sharded.rounds_per_second"]


def _lookup(report: dict, dotted: str):
    """Resolve ``a.b.c`` in nested dicts; None when any hop is missing."""
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _baseline_report(ref: str, path: str) -> dict | None:
    """The report file as committed at ``ref``, or None if unavailable."""
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{path}"],
            capture_output=True,
            check=True,
            cwd=Path(__file__).resolve().parent.parent,
        ).stdout
        report = json.loads(blob)
    except (subprocess.CalledProcessError, OSError, ValueError):
        return None
    return report if isinstance(report, dict) else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        default="BENCH_perf.json",
        help="freshly generated report file (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref whose committed report is the baseline "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--key",
        action="append",
        dest="keys",
        metavar="SECTION.FIELD",
        help="dotted report key to guard; repeatable "
        f"(default: {DEFAULT_KEYS})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop below baseline (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    keys = args.keys or DEFAULT_KEYS

    try:
        current = json.loads(Path(args.current).read_text())
    except (OSError, ValueError) as exc:
        print(f"bench-regression: cannot read {args.current}: {exc}")
        return 1
    baseline = _baseline_report(args.baseline_ref, "BENCH_perf.json")
    if baseline is None:
        print(
            f"bench-regression: no committed BENCH_perf.json at "
            f"{args.baseline_ref}; nothing to compare"
        )
        return 0

    failed = False
    for key in keys:
        base = _lookup(baseline, key)
        now = _lookup(current, key)
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            print(f"bench-regression: {key}: no numeric baseline; skipped")
            continue
        if not isinstance(now, (int, float)) or isinstance(now, bool):
            print(f"bench-regression: {key}: missing from current report")
            failed = True
            continue
        floor = base * (1.0 - args.tolerance)
        verdict = "OK" if now >= floor else "REGRESSED"
        print(
            f"bench-regression: {key}: {now:g} vs baseline {base:g} "
            f"(floor {floor:g}) {verdict}"
        )
        if now < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
