"""Ablation: optimistic-unchoke reach and the phase traps.

With full optimistic unchoking (``starved`` targets — any interested
neighbor with nothing to reciprocate), the bootstrap and last-phase
traps largely dissolve: trapped peers keep receiving free pieces.
Restricting the channel to zero-piece newcomers (``empty``) restores
the paper's strict-tit-for-tat regime, where escape waits on new
neighbors (the model's ``alpha``/``gamma``).  This bench measures the
difference on a starvation-prone swarm.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.sim.config import SimConfig
from repro.sim.swarm import run_swarm


def run_targets(targets: str):
    config = SimConfig(
        num_pieces=80, max_conns=4, ns_size=8,
        arrival_process="poisson", arrival_rate=1.0,
        initial_leechers=50, initial_distribution="uniform",
        initial_fill=0.5, num_seeds=1, seed_upload_slots=2,
        optimistic_unchoke_prob=0.5, optimistic_targets=targets,
        piece_selection="rarest", announce_interval=1000.0,
        max_time=400.0, seed=4,
    )
    result = run_swarm(config)
    durations = [c.duration for c in result.metrics.completed]
    # Tail latency exposes the last-phase trap.
    p90 = float(np.percentile(durations, 90)) if durations else float("nan")
    return {
        "targets": targets,
        "completed": len(durations),
        "mean": float(np.mean(durations)) if durations else float("nan"),
        "p90": p90,
    }


def bench_workload():
    return [run_targets(t) for t in ("starved", "empty")]


def test_ablation_optimistic(benchmark):
    rows = run_once(benchmark, bench_workload)
    print()
    print(format_table(
        ["optimistic targets", "completed", "mean duration", "p90 duration"],
        [[r["targets"], r["completed"], round(r["mean"], 1),
          round(r["p90"], 1)] for r in rows],
    ))

    by_targets = {r["targets"]: r for r in rows}
    # Full optimistic unchoking shortens the starved tail.
    assert by_targets["starved"]["p90"] < by_targets["empty"]["p90"]
    assert by_targets["starved"]["mean"] <= by_targets["empty"]["mean"] + 1.0
