"""Performance: batched vs serial Monte-Carlo chain sampling.

Times the Figure-1 workload (``runs=64`` trajectories of the default
paper-scale parameter set) through both engines:

* serial — ``runs`` sequential :meth:`DownloadChain.trajectory` calls,
  one Python-loop state step at a time (the pre-batch estimator path);
* batched — one :class:`~repro.core.batch.BatchChainSampler.sample`
  call stepping all runs simultaneously off dense cumulative kernel
  tables.

The headline number is the speedup, asserted >= 5x and recorded in
``BENCH_perf.json`` (section ``batch_sampler``) so the perf trajectory
is visible across PRs.  Estimator agreement is not checked here — the
statistical-equivalence suite (``tests/core/test_batch.py``) pins both
paths against the exact absorbing-chain solver.
"""

import time

import numpy as np

from benchmarks.perf_report import record_perf
from repro.core.batch import BatchChainSampler
from repro.core.chain import DownloadChain
from repro.core.parameters import DEFAULT_PARAMETERS

RUNS = 64

#: The acceptance floor: the vectorized engine must beat the serial
#: trajectory loop by at least this factor on the Figure-1 workload.
MIN_SPEEDUP = 5.0


def sample_serial(chain: DownloadChain) -> int:
    rng = np.random.default_rng(0)
    steps = 0
    for _ in range(RUNS):
        steps += len(chain.trajectory(rng=rng)) - 1
    return steps


def sample_batched(sampler: BatchChainSampler) -> int:
    return sampler.sample(RUNS, seed=0).total_steps


def test_perf_batch_speedup(benchmark):
    chain = DownloadChain(DEFAULT_PARAMETERS)
    sampler = chain.batch_sampler()
    # Warm the kernel pmf cache / dense tables outside the timings so
    # both engines are measured on sampling alone.
    sample_batched(sampler)

    serial_start = time.perf_counter()
    serial_steps = sample_serial(chain)
    serial_seconds = time.perf_counter() - serial_start

    batch_steps = benchmark.pedantic(
        sample_batched, args=(sampler,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    batch_seconds = benchmark.stats.stats.mean

    assert serial_steps > 0 and batch_steps > 0
    speedup = serial_seconds / batch_seconds
    trajectories_per_second = RUNS / batch_seconds
    print(
        f"\nbatch sampler: {batch_seconds:.3f}s vs serial "
        f"{serial_seconds:.3f}s on runs={RUNS}, "
        f"B={DEFAULT_PARAMETERS.num_pieces} -> {speedup:.1f}x "
        f"({trajectories_per_second:.0f} trajectories/s)"
    )
    record_perf("batch_sampler", {
        "runs": RUNS,
        "num_pieces": DEFAULT_PARAMETERS.num_pieces,
        "serial_seconds": round(serial_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(speedup, 2),
        "trajectories_per_second": round(trajectories_per_second, 1),
        "chain_steps": int(batch_steps),
    })
    assert speedup >= MIN_SPEEDUP
