"""Ablation: piece selection is the stability mechanism.

Section 6 attributes the entropy repair in the trading phase to the
protocol exchanging "the least replicated pieces ... at a faster rate
than the more replicated pieces" — i.e. to rarest-first.  This ablation
replays the high-skew stability experiment (the Figure 3/4(b,c) setup
with B = 10, which *recovers* under rarest-first) with each
piece-selection policy:

* ``rarest`` — noisy per-view rarest-first (realistic);
* ``strict-rarest`` — idealised shared-view argmin;
* ``random`` — the paper's random-piece-first.

Expected: both rarest variants repair the skew (bounded population,
entropy well off zero); random selection cannot create the repair
drift, so even B = 10 diverges like the paper's B = 3.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.stability.experiments import (
    run_stability_experiment,
    stability_config,
)

POLICIES = ("rarest", "strict-rarest", "random")


def run_policy(policy: str):
    config = stability_config(
        10,
        arrival_rate=15.0,
        initial_leechers=250,
        max_time=100.0,
        seed=2,
    ).with_changes(piece_selection=policy)
    run = run_stability_experiment(config, entropy_every=4)
    return {
        "policy": policy,
        "final_population": run.final_population(),
        "tail_entropy": float(run.entropy[-10:].mean()),
        "diverged": run.diverged,
    }


def bench_workload():
    return [run_policy(p) for p in POLICIES]


def test_ablation_piece_selection(benchmark):
    rows = run_once(benchmark, bench_workload)
    print()
    print(format_table(
        ["policy", "final peers", "tail entropy", "outcome"],
        [[r["policy"], r["final_population"], round(r["tail_entropy"], 3),
          "DIVERGED" if r["diverged"] else "bounded"] for r in rows],
    ))

    by_policy = {r["policy"]: r for r in rows}
    # Rarest-first (either view) repairs the skew at B = 10...
    assert not by_policy["rarest"]["diverged"]
    assert by_policy["rarest"]["tail_entropy"] > 0.3
    assert not by_policy["strict-rarest"]["diverged"]
    # ...random selection cannot, and the swarm diverges like B = 3.
    assert by_policy["random"]["diverged"]
    assert by_policy["random"]["tail_entropy"] < 0.05
