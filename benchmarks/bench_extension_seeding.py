"""Extension: the Section-7.2 seeding study.

Measures, on a cold-start swarm (all pieces descend from the origin
seed), the effect of seed capacity, super-seeding, and post-completion
lingering on download times, bootstrap exposure, and the seeding
efficiency (completions per seed upload).
"""

import math

from benchmarks.conftest import run_once
from repro.experiments.seeding import run_seeding_study


def bench_workload():
    return run_seeding_study(
        num_pieces=60,
        capacities=(2, 4, 8),
        arrival_rate=2.0,
        initial_leechers=50,
        max_time=150.0,
        seed=0,
    )


def test_extension_seeding(benchmark):
    result = run_once(benchmark, bench_workload)
    print()
    print(result.format())
    points = result.by_label()

    # More capacity -> faster downloads, at diminishing returns: the
    # 2 -> 4 gain exceeds the 4 -> 8 gain.
    assert points["capacity=4"].mean_duration < points["capacity=2"].mean_duration
    assert points["capacity=8"].mean_duration < points["capacity=4"].mean_duration
    gain_low = points["capacity=2"].mean_duration - points["capacity=4"].mean_duration
    gain_high = points["capacity=4"].mean_duration - points["capacity=8"].mean_duration
    assert gain_low > gain_high, "seed capacity must show diminishing returns"

    # Per-upload seeding efficiency falls as capacity rises (the swarm's
    # own replication does the heavy lifting once pieces circulate).
    assert (
        points["capacity=2"].completions_per_seed_upload
        > points["capacity=4"].completions_per_seed_upload
        > points["capacity=8"].completions_per_seed_upload
    )

    # Lingering ex-leechers dominate: free capacity that scales with the
    # swarm beats any fixed origin-seed budget.
    lingering = points["lingering seeds (capacity=4, 10 rounds)"]
    assert lingering.mean_duration < points["capacity=8"].mean_duration

    # Super-seeding spends fewer seed uploads for comparable speed:
    # better per-upload efficiency than plain seeding at equal capacity.
    super_point = points["super-seeding (capacity=4)"]
    assert super_point.seed_uploads < points["capacity=4"].seed_uploads
    assert not math.isnan(super_point.mean_duration)
    assert (
        super_point.completions_per_seed_upload
        > points["capacity=4"].completions_per_seed_upload
    )
