"""Extension: heterogeneous bandwidth under strict tit-for-tat.

The paper assumes homogeneous bandwidth and defers the heterogeneous
case (its Section 7; cf. [11]).  This bench relaxes the assumption:
half the leechers can upload 1 piece per round, half 4.  Under strict
tit-for-tat, a swap needs budget on *both* sides, so slow uploaders
also download slowly — reciprocity couples the directions, the fairness
property the incentive mechanism is designed around.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.sim.config import SimConfig
from repro.sim.swarm import run_swarm


def bench_workload():
    base = dict(
        num_pieces=60, max_conns=4, ns_size=25,
        arrival_process="poisson", arrival_rate=2.0,
        initial_leechers=60, initial_distribution="uniform",
        initial_fill=0.5, num_seeds=1, seed_upload_slots=2,
        optimistic_unchoke_prob=0.5, piece_selection="rarest",
        max_time=120.0, seed=2,
    )
    homogeneous = run_swarm(SimConfig(**base))
    heterogeneous = run_swarm(
        SimConfig(**base, bandwidth_classes=((0.5, 1), (0.5, 4)))
    )
    return homogeneous, heterogeneous


def test_extension_heterogeneous(benchmark):
    homogeneous, heterogeneous = run_once(benchmark, bench_workload)
    print()

    durations = {1: [], 4: []}
    for download in heterogeneous.metrics.completed:
        if download.upload_capacity in durations:
            durations[download.upload_capacity].append(download.duration)
    slow = float(np.mean(durations[1]))
    fast = float(np.mean(durations[4]))
    homog_mean = homogeneous.metrics.mean_download_duration()

    print(format_table(
        ["population", "completed", "mean download time"],
        [
            ["homogeneous", len(homogeneous.metrics.completed),
             round(homog_mean, 1)],
            ["hetero: slow class (1 up/round)", len(durations[1]),
             round(slow, 1)],
            ["hetero: fast class (4 up/round)", len(durations[4]),
             round(fast, 1)],
        ],
    ))

    # Tit-for-tat reciprocity: slow uploaders download markedly slower.
    assert slow > 1.3 * fast, "TFT must couple upload and download rates"
    # Heterogeneity costs aggregate throughput relative to homogeneous
    # capacity (swaps stall on the slow side's budget).
    assert len(heterogeneous.metrics.completed) < len(
        homogeneous.metrics.completed
    )
