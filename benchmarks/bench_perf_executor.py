"""Performance: executor fan-out and kernel-cache effectiveness.

Times a replication fan through :class:`ExperimentExecutor` and checks
the two properties the runtime exists for: the kernel cache turns all
but one chain construction per parameter set into hits, and the
parallel path returns bit-identical results to the serial reference.
Wall-clock speedup is *not* asserted — it depends on the host's core
count — but the timing table makes regressions visible.
"""

import numpy as np

from benchmarks.perf_report import record_perf
from repro.core.parameters import ModelParameters
from repro.runtime import (
    ExperimentExecutor,
    TaskSpec,
    derive_seed,
    reset_shared_cache,
)
from repro.runtime.tasks import potential_ratio_task

RUNS = 24


def _tasks():
    params = ModelParameters(
        num_pieces=60, max_conns=4, ns_size=15, alpha=0.2, gamma=0.2
    )
    return [
        TaskSpec(potential_ratio_task, (params, derive_seed(11, 0, run)))
        for run in range(RUNS)
    ]


def run_fan_once():
    reset_shared_cache()
    executor = ExperimentExecutor(workers=1)
    results = executor.run(_tasks())
    for _sums, _counts, steps in results:
        executor.record_events(steps)
    return results, executor.telemetry


def test_perf_executor_fan(benchmark):
    results, telemetry = benchmark.pedantic(
        run_fan_once, rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(results) == RUNS
    # One parameter set: one miss, every other replication hits.
    assert telemetry.cache_misses == 1
    assert telemetry.cache_hits == RUNS - 1
    assert telemetry.events > 0
    print(f"\n{telemetry.format()}")
    mean_seconds = benchmark.stats.stats.mean
    record_perf("executor", {
        "tasks": RUNS,
        "seconds": round(mean_seconds, 4),
        "tasks_per_second": round(RUNS / mean_seconds, 1),
        "cache_hits": telemetry.cache_hits,
        "cache_misses": telemetry.cache_misses,
    })

    # The parallel path must reproduce the serial reference exactly.
    parallel = ExperimentExecutor(workers=2).run(_tasks())
    for (sums, counts, steps), (p_sums, p_counts, p_steps) in zip(
        results, parallel
    ):
        assert np.array_equal(sums, p_sums)
        assert np.array_equal(counts, p_counts)
        assert steps == p_steps
