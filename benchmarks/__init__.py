"""Benchmark harness: one bench per figure of the paper's evaluation."""
