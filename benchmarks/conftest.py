"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's figures at reduced scale,
prints the same rows/series the figure plots, and asserts the *shape*
the paper reports (who wins, where inflections fall) — absolute numbers
are substrate-dependent and not compared.

Benches run the workload exactly once via ``benchmark.pedantic`` (these
are minutes-scale simulations, not microbenchmarks).
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
