"""Performance: soa swarm backend — speedup floor and scaling curve.

Two benches:

* **speedup** — the same 5000-peer workload on both backends; the soa
  engine must be at least 10x faster (CI's perf-smoke enforces this
  floor; the measured ratio is recorded for the trajectory).
* **scaling curve** — soa round throughput at 1k/5k/20k/100k peers,
  recorded to ``BENCH_perf.json`` as the ``simulator`` section
  (``{peers: rounds_per_second}`` plus the backend label, replacing the
  old flat single-size entry — see ``docs/RUNTIME.md`` for the schema).

Rounds-per-second includes setup, so the numbers are honest end-to-end
throughput for short runs, not steady-state marketing numbers.
"""

import time

from benchmarks.perf_report import record_perf
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import run_swarm

#: Peer counts on the scaling curve (the 1e5 point is the tentpole's
#: flash-crowd scale).
CURVE = (1_000, 5_000, 20_000, 100_000)

#: Rounds simulated per curve point (shorter at larger scales so the
#: whole curve stays CI-friendly).
CURVE_ROUNDS = {1_000: 30, 5_000: 20, 20_000: 10, 100_000: 5}

SPEEDUP_PEERS = 5_000
SPEEDUP_ROUNDS = 20
SPEEDUP_FLOOR = 10.0


def swarm_config(peers: int, rounds: int) -> SimConfig:
    """The throughput workload, scaled to ``peers`` concurrent leechers."""
    return SimConfig(
        num_pieces=60,
        max_conns=4,
        ns_size=25,
        arrival_process="poisson",
        arrival_rate=3.0 * peers / 100.0,
        initial_leechers=peers,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=max(peers // 100, 1),
        seed_upload_slots=2,
        piece_selection="rarest",
        max_time=float(rounds),
        seed=9,
    )


def rounds_per_second(peers: int, rounds: int, backend: str) -> float:
    config = swarm_config(peers, rounds)
    metrics = MetricsCollector(config.max_conns, entropy_every=10)
    start = time.perf_counter()
    result = run_swarm(config, metrics=metrics, backend=backend)
    elapsed = time.perf_counter() - start
    assert result.total_rounds == rounds
    assert result.backend == backend
    return rounds / elapsed


def test_perf_soa_speedup_over_object_backend():
    """The CI floor: soa must stay >= 10x the object engine at 5k peers."""
    soa = rounds_per_second(SPEEDUP_PEERS, SPEEDUP_ROUNDS, "soa")
    obj = rounds_per_second(SPEEDUP_PEERS, SPEEDUP_ROUNDS, "object")
    speedup = soa / obj
    print(
        f"\n{SPEEDUP_PEERS} peers: soa {soa:.1f} rounds/s, "
        f"object {obj:.2f} rounds/s -> {speedup:.1f}x"
    )
    record_perf("simulator_speedup", {
        "peers": SPEEDUP_PEERS,
        "rounds": SPEEDUP_ROUNDS,
        "object_rounds_per_second": round(obj, 2),
        "soa_rounds_per_second": round(soa, 1),
        "speedup": round(speedup, 1),
        "floor": SPEEDUP_FLOOR,
    })
    assert speedup >= SPEEDUP_FLOOR, (
        f"soa backend is only {speedup:.1f}x the object backend at "
        f"{SPEEDUP_PEERS} peers (floor: {SPEEDUP_FLOOR}x)"
    )


def test_perf_soa_scaling_curve():
    """Record the peers-vs-throughput curve, 1k through the 1e5 point."""
    curve = {}
    for peers in CURVE:
        rounds = CURVE_ROUNDS[peers]
        curve[str(peers)] = round(rounds_per_second(peers, rounds, "soa"), 2)
        print(f"\nsoa {peers} peers: {curve[str(peers)]} rounds/s "
              f"({rounds} rounds)")
    record_perf("simulator", {
        "backend": "soa",
        "num_pieces": 60,
        "rounds": {str(p): CURVE_ROUNDS[p] for p in CURVE},
        "rounds_per_second": curve,
    })
    # Generous floors: catch order-of-magnitude regressions, not noise.
    assert curve["1000"] > 5.0
    assert curve["100000"] > 0.05
