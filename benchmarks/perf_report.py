"""Machine-readable benchmark trajectory: ``BENCH_perf.json``.

The perf benches (``bench_perf_*.py``) each record their headline
numbers into one JSON file at the repository root, so the performance
trajectory is tracked across PRs instead of living only in ephemeral
pytest-benchmark tables.  Sections are merged: every bench owns one
top-level key and overwrites only its own section, so running a single
bench refreshes its numbers without clobbering the others.

The schema is documented in ``docs/RUNTIME.md``; CI's ``perf-smoke``
job runs the benches and uploads the file as an artifact.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Dict

__all__ = ["record_perf", "REPORT_PATH"]

#: Repo-root report file (this module lives in ``<root>/benchmarks/``).
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Current report schema version (bump on breaking layout changes).
#: v2: ``simulator`` became the soa backend's peers-vs-rounds/s scaling
#: curve; the object backend's flat small-swarm entry moved to
#: ``simulator_smoke`` and the backend-vs-backend ratio lives in
#: ``simulator_speedup``.
SCHEMA_VERSION = 2


def record_perf(section: str, payload: Dict) -> None:
    """Merge ``{section: payload}`` into ``BENCH_perf.json``.

    Numbers are rounded via JSON round-trip as-is; callers should round
    what they record.  Corrupt or missing files are rebuilt from
    scratch, so a bench never fails on report bookkeeping.
    """
    try:
        report = json.loads(REPORT_PATH.read_text())
        if not isinstance(report, dict):
            report = {}
    except (OSError, ValueError):
        report = {}
    report["schema"] = SCHEMA_VERSION
    report["python"] = platform.python_version()
    report[section] = payload
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
