"""Figure 3/4(c): effect of B on entropy.

Paper finding: from the same high-skew start, the entropy E collapses
toward 0 for B = 3 (the skew wins) and recovers toward 1 for B = 10
(rarest-first repairs the replication imbalance).
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import ascii_chart, format_series
from repro.experiments.fig3bc import run_fig3bc


def bench_workload():
    return run_fig3bc(
        piece_counts=(3, 10),
        initial_leechers=250,
        arrival_rate=15.0,
        max_time=120.0,
        seed=1,
        entropy_every=4,
    )


def test_fig3c_entropy(benchmark):
    result = run_once(benchmark, bench_workload)
    print()
    for num_pieces in (3, 10):
        run = result.runs[num_pieces]
        print(format_series(
            f"entropy (B={num_pieces})", run.times, run.entropy,
            max_rows=14, x_label="t", y_label="E",
        ))

    print()
    print(ascii_chart(
        {f"B={b}": result.runs[b].entropy for b in (3, 10)},
        title="entropy over time (Figure 3/4(c))",
    ))

    run3, run10 = result.runs[3], result.runs[10]
    tail3 = run3.entropy[-run3.entropy.size // 4:].mean()
    tail10 = run10.entropy[-run10.entropy.size // 4:].mean()
    print(f"tail entropy: B=3 -> {tail3:.3f}, B=10 -> {tail10:.3f}")

    assert tail3 < 0.05, "B=3 entropy must collapse toward 0"
    assert tail10 > 0.4, "B=10 entropy must recover"
    assert run10.entropy_recovered
    assert not run3.entropy_recovered
