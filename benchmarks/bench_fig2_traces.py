"""Figure 2: the three download-evolution archetypes.

Regenerates the smooth / significant-last-phase / significant-bootstrap
instances from simulated swarms and prints both series each panel plots
(cumulative bytes and potential-set size over time).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig2 import run_fig2
from repro.traces.analysis import phase_segments


def bench_workload():
    return run_fig2(seed=0)


def test_fig2_traces(benchmark):
    result = run_once(benchmark, bench_workload)
    print()
    print(result.format())

    # Each archetype classifies as itself.
    assert result.labels == {
        "smooth": "smooth",
        "last": "last",
        "bootstrap": "bootstrap",
    }

    # Panel-specific signatures.
    smooth = result.traces["smooth"]
    assert smooth.is_complete
    assert min(smooth.potential_series()[3:]) >= 1, (
        "smooth download keeps a non-empty potential set"
    )

    last = result.traces["last"]
    last_segments = phase_segments(last)
    assert last_segments.last > 0, "last-phase archetype has a visible tail"

    bootstrap = result.traces["bootstrap"]
    leading = [s for s in bootstrap.samples[:8]]
    assert all(s.potential_set_size == 0 for s in leading), (
        "bootstrap archetype starts with an empty potential set"
    )
