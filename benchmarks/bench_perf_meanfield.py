"""Performance: mean-field ODE backend vs matched-accuracy Monte Carlo.

Two floors, recorded in ``BENCH_perf.json`` (section ``meanfield``):

* **Million-peer wall budget** — one mean-field solve at the paper's
  ``B=200, k=7, s=50`` for a ``10**6``-peer swarm (the closure's cost
  is independent of both the state count and the population) must
  finish within :data:`MAX_SOLVE_SECONDS` with warm kernel tables.
* **Steady-state speedup vs matched-accuracy Monte Carlo** — the
  mean-field solution is deterministic, so the runtime ``KernelCache``
  memoizes it and repeated queries are cache reads; a sampled ensemble
  is redrawn on every ``solve()`` call.  The floor compares the
  repeated-query cost against a batch ensemble sized so its 95 % CI
  half-width matches the mean-field backend's validated ~1 %
  download-time accuracy: the ensemble must cost at least
  :data:`MIN_SPEEDUP` times more.  (A *cold* mean-field solve is in
  the same tens-of-milliseconds class as one matched ensemble — the
  raw timings are all recorded, the advantage is in the steady state.)

Numerical agreement is not checked here beyond sanity — the
cross-backend conformance suite (``tests/conformance/``) pins
mean-field vs exact vs Monte-Carlo cell by cell.
"""

import math
import time

from benchmarks.perf_report import record_perf
from repro.api import ModelParams, solve
from repro.core.meanfield import solve_mean_field
from repro.runtime.cache import KernelCache

#: The paper's headline parameter set.
PAPER_PARAMS = ModelParams(num_pieces=200, max_conns=7, ns_size=50)

#: Swarm population the service-level query advertises.
SWARM_SIZE = 10**6

#: Acceptance ceiling for one warm-tables mean-field solve.
MAX_SOLVE_SECONDS = 0.1

#: Acceptance floor: matched-accuracy ensemble vs repeated query.
MIN_SPEEDUP = 100.0

#: Mean-field download-time accuracy target (validated < 1% vs exact).
ACCURACY_REL = 0.01

#: z-score for the ensemble's 95 % confidence half-width.
Z_95 = 1.96

#: Pilot ensemble used to estimate the sampler's spread.
PILOT_RUNS = 32

#: Repetitions used to time the memoized query path stably.
QUERY_REPS = 50


def _timed_query(cache):
    return solve(
        PAPER_PARAMS, "download_time", "meanfield",
        swarm_size=SWARM_SIZE, cache=cache,
    )


def test_perf_meanfield(benchmark):
    cache = KernelCache()

    # Cold path: the trading-power curve dominates (O(B^3), shared with
    # every backend through the cache); time it once for the report.
    cold_start = time.perf_counter()
    tables = cache.meanfield_tables(PAPER_PARAMS)
    solution = solve_mean_field(PAPER_PARAMS, tables=tables)
    cold_seconds = time.perf_counter() - cold_start

    # Warm path: tables cached, the ODE integration is the whole cost.
    benchmark.pedantic(
        solve_mean_field, args=(PAPER_PARAMS,),
        kwargs={"tables": tables}, rounds=5, iterations=1, warmup_rounds=1,
    )
    solve_seconds = benchmark.stats.stats.mean

    # Steady state: the service-level query at a million peers reads the
    # memoized solution out of the KernelCache.
    first = _timed_query(cache)
    query_start = time.perf_counter()
    for _ in range(QUERY_REPS):
        repeat = _timed_query(cache)
    query_seconds = (time.perf_counter() - query_start) / QUERY_REPS
    assert repeat.payload.mean == first.payload.mean
    assert first.stats["swarm_size"] == SWARM_SIZE

    # Matched-accuracy Monte Carlo: size the ensemble from a pilot's
    # spread so its 95% CI half-width is ACCURACY_REL of the download
    # time, then run *that* ensemble for real — every solve() call
    # redraws it, so this is the per-query cost at matched accuracy.
    pilot = solve(
        PAPER_PARAMS, "download_time", "batch",
        runs=PILOT_RUNS, seed=2007, cache=cache,
    )
    target = ACCURACY_REL * solution.download_time
    runs_needed = max(
        PILOT_RUNS, math.ceil((Z_95 * pilot.payload.std / target) ** 2)
    )
    matched_start = time.perf_counter()
    matched = solve(
        PAPER_PARAMS, "download_time", "batch",
        runs=runs_needed, seed=2007, cache=cache,
    )
    matched_seconds = time.perf_counter() - matched_start
    speedup = matched_seconds / query_seconds

    # Sanity: the two backends agree within the matched ensemble's CI.
    half_width = Z_95 * matched.payload.std / runs_needed ** 0.5
    assert abs(matched.payload.mean - solution.download_time) < (
        2.0 * half_width + target
    )

    print(
        f"\nmean-field solve: {solve_seconds * 1e3:.1f}ms warm "
        f"({cold_seconds * 1e3:.0f}ms cold, {solution.stats['nfev']} "
        f"RHS evals); memoized query at {SWARM_SIZE:.0e} peers "
        f"{query_seconds * 1e3:.3f}ms"
    )
    print(
        f"matched-accuracy batch MC: {runs_needed} runs for 95% CI "
        f"half-width <= {target:.3f} rounds -> {matched_seconds * 1e3:.1f}ms "
        f"per query vs {query_seconds * 1e3:.3f}ms ({speedup:.0f}x)"
    )

    record_perf("meanfield", {
        "num_pieces": PAPER_PARAMS.num_pieces,
        "swarm_size": SWARM_SIZE,
        "cold_seconds": round(cold_seconds, 4),
        "solve_seconds": round(solve_seconds, 5),
        "query_seconds": round(query_seconds, 6),
        "nfev": int(solution.stats["nfev"]),
        "download_time": round(solution.download_time, 4),
        "accuracy_rel": ACCURACY_REL,
        "matched_runs": runs_needed,
        "matched_seconds": round(matched_seconds, 4),
        "speedup_vs_batch": round(speedup, 0),
    })
    assert solve_seconds < MAX_SOLVE_SECONDS
    assert query_seconds < MAX_SOLVE_SECONDS
    assert speedup >= MIN_SPEEDUP
