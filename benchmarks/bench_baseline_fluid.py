"""Baseline: the Qiu-Srikant fluid model fed with the derived efficiency.

The fluid model treats the sharing effectiveness ``eta`` as an exogenous
input — exactly the protocol detail the paper's model derives.  This
bench closes the loop: the balance-equation eta per k parameterises the
fluid steady state, and the fluid trajectory is checked against its own
equilibrium.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.baselines.fluid import FluidModel
from repro.efficiency.efficiency import efficiency_curve


def bench_workload():
    points = efficiency_curve([1, 2, 4, 8])
    rows = []
    for point in points:
        model = FluidModel(
            arrival_rate=2.0, upload_rate=0.1, download_rate=1.0,
            efficiency=point.eta, seed_departure_rate=0.5,
        )
        steady = model.steady_state()
        trajectory = model.integrate(400.0, points=400)
        rows.append((point.max_conns, point.eta, steady, trajectory))
    return rows


def test_baseline_fluid(benchmark):
    rows = run_once(benchmark, bench_workload)
    print()
    print(format_table(
        ["k", "eta (derived)", "leechers", "seeds", "mean T", "bottleneck"],
        [
            [k, round(eta, 3), round(steady.leechers, 1),
             round(steady.seeds, 1), round(steady.mean_download_time, 1),
             "downlink" if steady.download_constrained else "uplink"]
            for k, eta, steady, _traj in rows
        ],
    ))

    # Higher derived efficiency -> fewer queued leechers, shorter T.
    leechers = [steady.leechers for _k, _e, steady, _t in rows]
    assert leechers == sorted(leechers, reverse=True)

    # Trajectories converge to the closed-form equilibrium.
    for _k, _eta, steady, trajectory in rows:
        np.testing.assert_allclose(
            trajectory.leechers[-1], steady.leechers, rtol=0.05
        )
        np.testing.assert_allclose(
            trajectory.seeds[-1], steady.seeds, rtol=0.05
        )
