"""Figure 1(b): evolution timeline — model vs simulation (PSS 5 and 50).

Paper setting: B = 200, k = 7, PSS in {5, 50}.  Expected shape: both
timelines monotone; the small peer set downloads far slower (bootstrap
plateau + last-phase tail); the model tracks the simulation tightly for
the large peer set and more loosely — same phases — for PSS = 5.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_checks
from repro.analysis.validation import compare_series, timeline_shape
from repro.experiments.fig1b import run_fig1b

SMALL_PSS, LARGE_PSS = 5, 40
NUM_PIECES = 100
MAX_CONNS = 7


def bench_workload():
    return run_fig1b(
        pss_values=(SMALL_PSS, LARGE_PSS),
        num_pieces=NUM_PIECES,
        max_conns=MAX_CONNS,
        model_runs=16,
        sim_instrument=6,
        max_time=600.0,
        seed=0,
    )


def test_fig1b_timeline(benchmark):
    result = run_once(benchmark, bench_workload)
    print()
    print(result.format())

    for pss in (SMALL_PSS, LARGE_PSS):
        checks = timeline_shape(
            result.model[pss], num_pieces=NUM_PIECES, max_conns=MAX_CONNS
        )
        print(format_checks(f"model timeline shape [PSS={pss}]", checks))
        assert checks["monotone"], checks
        assert checks["respects_parallelism_bound"], checks

    # The large peer set downloads faster than the small one, in both
    # model and simulation.
    assert result.model[LARGE_PSS][-1] < result.model[SMALL_PSS][-1]
    sim_small = result.sim[SMALL_PSS][-1]
    sim_large = result.sim[LARGE_PSS][-1]
    if np.isfinite(sim_small) and np.isfinite(sim_large):
        assert sim_large < sim_small

    # Model-vs-sim agreement at the large peer set (the paper's
    # "high accuracy for higher values of the peer set size").
    sim = result.sim[LARGE_PSS]
    mask = np.isfinite(sim)
    comparison = compare_series(result.model[LARGE_PSS][mask], sim[mask])
    print(f"model-vs-sim [PSS={LARGE_PSS}]: rmse={comparison.rmse:.2f} "
          f"corr={comparison.correlation:.3f}")
    assert comparison.correlation > 0.98
    assert result.sim_completed[LARGE_PSS] > 0
