"""Performance: simulator throughput (the one true timing bench).

Unlike the figure benches (timed once, asserted on shape), this bench
actually uses pytest-benchmark for what it is for: timing.  It measures
the simulator's round throughput on a mid-size steady swarm so
regressions in the hot paths (potential sets, matching, exchanges) are
visible in the benchmark table, plus two hot-spot micro-checks: the
bigint popcount powering :class:`Bitfield` and the cost of carrying a
disabled :class:`RoundProfiler` through the round loop.
"""

import time

from benchmarks.perf_report import record_perf
from repro.sim.bitfield import Bitfield
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm

ROUNDS = 60


def run_swarm_once(profile=False):
    config = SimConfig(
        num_pieces=60,
        max_conns=4,
        ns_size=25,
        arrival_process="poisson",
        arrival_rate=3.0,
        initial_leechers=100,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        piece_selection="rarest",
        max_time=float(ROUNDS),
        seed=9,
    )
    metrics = MetricsCollector(config.max_conns, entropy_every=10)
    swarm = Swarm(config, metrics=metrics, profile=profile)
    result = swarm.run()
    return result


def test_perf_simulator_throughput(benchmark):
    result = benchmark.pedantic(
        run_swarm_once, rounds=3, iterations=1, warmup_rounds=1
    )
    # Sanity: the workload actually ran.
    assert result.total_rounds == ROUNDS
    assert len(result.metrics.completed) > 50
    mean_seconds = benchmark.stats.stats.mean
    rounds_per_second = ROUNDS / mean_seconds
    print(f"\nthroughput: {rounds_per_second:.0f} protocol rounds/s "
          f"(~100-peer swarm)")
    # The ``simulator`` section is the soa scaling curve (see
    # bench_perf_soa.py); this small-swarm object-backend smoke keeps
    # its own section as the regression floor for the reference engine.
    record_perf("simulator_smoke", {
        "backend": "object",
        "rounds": ROUNDS,
        "seconds": round(mean_seconds, 4),
        "rounds_per_second": round(rounds_per_second, 1),
    })
    # Generous floor: catches order-of-magnitude regressions only.
    assert rounds_per_second > 20


def test_perf_profiler_overhead_unmeasurable():
    """A profiled run stays within noise of an unprofiled one.

    The profiler adds two attribute checks plus at most seven
    ``perf_counter`` calls per round; on a ~100-peer swarm that is
    far below run-to-run noise.  The bound here is deliberately loose
    (50%) — it exists to catch the profiler accidentally becoming a
    per-peer or per-exchange cost, not to resolve its true overhead.
    """
    def best_of(profile):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            result = run_swarm_once(profile=profile)
            best = min(best, time.perf_counter() - start)
        return best, result

    run_swarm_once()  # warm caches outside the timings
    plain_seconds, plain = best_of(False)
    profiled_seconds, profiled = best_of(True)
    assert plain.round_profile is None
    assert profiled.round_profile is not None
    assert sum(profiled.round_profile.values()) > 0
    overhead = profiled_seconds / plain_seconds - 1.0
    print(f"\nprofiler overhead: {overhead:+.1%} "
          f"({profiled_seconds:.3f}s vs {plain_seconds:.3f}s)")
    assert overhead < 0.5


def test_perf_bitfield_popcount(benchmark):
    """Micro-bench the bigint popcount behind ``Bitfield.count``.

    ``int.bit_count()`` (CPython >= 3.10) replaced the
    ``bin(mask).count("1")`` string round-trip in the Bitfield
    constructor; this pins the cost of counting a paper-scale
    (B = 200) mask so the fallback never silently returns.
    """
    pieces = [p for p in range(200) if p % 3 != 0]
    mask = Bitfield.from_pieces(200, pieces)._mask

    def count_many():
        total = 0
        for _ in range(1000):
            total += Bitfield(200, mask).count
        return total

    total = benchmark.pedantic(
        count_many, rounds=3, iterations=1, warmup_rounds=1
    )
    assert total == 1000 * len(pieces)
    per_count_us = benchmark.stats.stats.mean / 1000 * 1e6
    record_perf("bitfield", {
        "num_pieces": 200,
        "construct_and_count_us": round(per_count_us, 3),
        "native_bit_count": hasattr(int, "bit_count"),
    })
