"""Performance: simulator throughput (the one true timing bench).

Unlike the figure benches (timed once, asserted on shape), this bench
actually uses pytest-benchmark for what it is for: timing.  It measures
the simulator's round throughput on a mid-size steady swarm so
regressions in the hot paths (potential sets, matching, exchanges) are
visible in the benchmark table.
"""

from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm

ROUNDS = 60


def run_swarm_once():
    config = SimConfig(
        num_pieces=60,
        max_conns=4,
        ns_size=25,
        arrival_process="poisson",
        arrival_rate=3.0,
        initial_leechers=100,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        piece_selection="rarest",
        max_time=float(ROUNDS),
        seed=9,
    )
    metrics = MetricsCollector(config.max_conns, entropy_every=10)
    swarm = Swarm(config, metrics=metrics)
    result = swarm.run()
    return result


def test_perf_simulator_throughput(benchmark):
    result = benchmark.pedantic(
        run_swarm_once, rounds=3, iterations=1, warmup_rounds=1
    )
    # Sanity: the workload actually ran.
    assert result.total_rounds == ROUNDS
    assert len(result.metrics.completed) > 50
    mean_seconds = benchmark.stats.stats.mean
    rounds_per_second = ROUNDS / mean_seconds
    print(f"\nthroughput: {rounds_per_second:.0f} protocol rounds/s "
          f"(~100-peer swarm)")
    # Generous floor: catches order-of-magnitude regressions only.
    assert rounds_per_second > 20
