"""Extension: flash-crowd service capacity scales with the swarm.

The related-work claim from Yang & de Veciana [12] that the paper
summarises: "during the flash crowd phase, the service capacity of the
network scales logarithmically with the number of peers" — i.e. the
makespan of serving a burst of N peers from one seed grows like log N,
not N, because every completed piece becomes new upload capacity.

This bench releases flash crowds of increasing size onto a single-seed
swarm and measures the 90%-completion makespan; doubling the crowd must
add far less than double the time (strongly sublinear growth).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.sim.config import SimConfig
from repro.sim.swarm import run_swarm

CROWDS = (25, 50, 100, 200)


def makespan(flash_size: int) -> float:
    config = SimConfig(
        num_pieces=40,
        max_conns=4,
        ns_size=25,
        arrival_process="flash",
        flash_size=flash_size,
        arrival_rate=0.0,
        initial_leechers=0,
        num_seeds=1,
        seed_upload_slots=4,
        optimistic_unchoke_prob=0.6,
        piece_selection="rarest",
        max_time=400.0,
        seed=flash_size,
    )
    result = run_swarm(config)
    finish_times = sorted(c.completed_at for c in result.metrics.completed)
    target = int(0.9 * flash_size)
    if len(finish_times) < target:
        return float("inf")
    return float(finish_times[target - 1])


def bench_workload():
    return {n: makespan(n) for n in CROWDS}


def test_extension_flash_crowd(benchmark):
    spans = run_once(benchmark, bench_workload)
    print()
    rows = []
    for n in CROWDS:
        rows.append([n, round(spans[n], 1),
                     round(spans[n] / np.log2(n), 2)])
    print(format_table(["crowd size", "90% makespan", "makespan / log2(N)"],
                       rows))

    # Every crowd is served.
    assert all(np.isfinite(spans[n]) for n in CROWDS)
    # Strongly sublinear scaling: serving 8x the peers costs well under
    # 8x the time (the paper's summary: logarithmic capacity growth).
    ratio = spans[CROWDS[-1]] / spans[CROWDS[0]]
    crowd_ratio = CROWDS[-1] / CROWDS[0]
    print(f"makespan ratio {ratio:.2f}x for a {crowd_ratio:.0f}x crowd")
    assert ratio < crowd_ratio / 2
