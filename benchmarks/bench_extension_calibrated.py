"""Extension: the calibrated model loop (measured p_r into the model).

The paper defines ``p_r`` and ``p_n`` as system averages; this bench
measures them from the simulator per k, feeds the measured ``p_r(k)``
back into the Section-5 balance equations, and checks the calibrated
model against the directly measured efficiency — plus the lifetime
model's prediction that ``p_r`` rises with k.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.efficiency.measurement import calibrated_efficiency_curve

K_VALUES = (1, 2, 4, 8)


def bench_workload():
    return calibrated_efficiency_curve(K_VALUES, seed=0)


def test_extension_calibrated(benchmark):
    points = run_once(benchmark, bench_workload)
    print()
    print(format_table(
        ["k", "measured p_r", "measured p_n", "sim eta", "calibrated model eta"],
        [
            [p.max_conns, round(p.p_reenc, 3), round(p.p_new, 3),
             round(p.sim_eta, 3), round(p.model_eta, 3)]
            for p in points
        ],
    ))

    # The lifetime mechanism, observed: connection survival rises with k.
    survivals = [p.p_reenc for p in points]
    assert survivals[-1] > survivals[0] + 0.05, (
        "measured p_r(k) must rise with k (connections last longer)"
    )

    # The calibrated model tracks the simulation at every k.
    for point in points:
        assert abs(point.model_eta - point.sim_eta) < 0.12, point
