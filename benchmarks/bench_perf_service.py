"""Performance: the serve layer's cold/warm cost profile and coalescing.

Drives :class:`~repro.service.SolverService` directly (no HTTP socket,
so the numbers isolate the query layer: cache-key canonicalization,
result cache, single-flight table, pool handoff).  Three measurements:

* **cold** — distinct parameter sets against empty caches; every query
  compiles an operator and factorizes.
* **warm** — the same queries repeated; every one must be a result-cache
  ``hit`` that never re-enters the solver.
* **coalescing** — a concurrent burst of identical queries on a fresh
  key; exactly one may reach the solver.

The warm-throughput and warm/cold-speedup floors are the service's
headline contract (see docs/SERVICE.md); the numbers land under the
``service`` key of ``BENCH_perf.json``.
"""

import asyncio
import time

from benchmarks.perf_report import record_perf
from repro.api import ModelParams, Query
from repro.runtime.cache import KernelCache
from repro.service import SolverService

DISTINCT = 12
WARM_REPEATS = 20
BURST = 32

WARM_QPS_FLOOR = 200.0
SPEEDUP_FLOOR = 10.0


def _queries():
    base = dict(num_pieces=40, max_conns=3, ns_size=10)
    return [
        Query.make(
            ModelParams(alpha=0.1 + 0.05 * i, **base), "download_time", "exact"
        )
        for i in range(DISTINCT)
    ]


async def _profile(service, queries):
    start = time.perf_counter()
    for query in queries:
        _payload, outcome = await service.solve_async(query)
        assert outcome == "miss"
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(WARM_REPEATS):
        for query in queries:
            _payload, outcome = await service.solve_async(query)
            assert outcome == "hit"
    warm_seconds = time.perf_counter() - start

    burst_query = Query.make(
        ModelParams(num_pieces=40, max_conns=3, ns_size=10, gamma=0.35),
        "download_time", "exact",
    )
    burst = await asyncio.gather(
        *(service.solve_async(burst_query) for _ in range(BURST))
    )
    return cold_seconds, warm_seconds, [outcome for _p, outcome in burst]


def test_perf_service_cold_warm_coalescing():
    service = SolverService(cache=KernelCache(), max_workers=2)
    try:
        cold_seconds, warm_seconds, burst_outcomes = asyncio.run(
            _profile(service, _queries())
        )
    finally:
        service.close()

    cold_qps = DISTINCT / cold_seconds
    warm_queries = DISTINCT * WARM_REPEATS
    warm_qps = warm_queries / warm_seconds
    speedup = warm_qps / cold_qps
    coalescing_ratio = burst_outcomes.count("coalesced") / BURST

    # Single-flight: the burst ran exactly one extra solve.
    assert service.solve_count == DISTINCT + 1
    assert burst_outcomes.count("miss") == 1
    assert warm_qps >= WARM_QPS_FLOOR, (
        f"warm throughput {warm_qps:.0f} q/s is below the "
        f"{WARM_QPS_FLOOR:.0f} q/s floor"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm/cold speedup {speedup:.1f}x is below the "
        f"{SPEEDUP_FLOOR:.0f}x floor"
    )

    record_perf("service", {
        "distinct_queries": DISTINCT,
        "cold_seconds": round(cold_seconds, 4),
        "cold_queries_per_second": round(cold_qps, 1),
        "warm_queries": warm_queries,
        "warm_seconds": round(warm_seconds, 4),
        "warm_queries_per_second": round(warm_qps, 1),
        "speedup": round(speedup, 1),
        "burst": BURST,
        "coalescing_ratio": round(coalescing_ratio, 4),
    })
    print(
        f"\nservice: cold {cold_qps:.1f} q/s, warm {warm_qps:.1f} q/s "
        f"({speedup:.1f}x), burst coalescing {coalescing_ratio:.2%}"
    )
