"""Ablation: connection-formation discipline (blind vs. greedy).

The model's formation rate carries the factor ``(1 - x_k)``: an attempt
succeeds only if the blindly contacted partner has an open slot.  The
``greedy`` discipline is the idealised matchmaker (retry candidates
until an open one accepts) — an upper bound that removes that friction.
This bench quantifies how much of the simulated inefficiency is
decentralised matching friction, per k.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm

K_VALUES = (1, 2, 4)


def run_matching(matching: str, k: int) -> float:
    config = SimConfig(
        num_pieces=60, max_conns=k, ns_size=30,
        arrival_process="poisson", arrival_rate=4.0,
        initial_leechers=80, initial_distribution="uniform",
        initial_fill=0.5, num_seeds=1, seed_upload_slots=2,
        optimistic_unchoke_prob=0.5, piece_selection="rarest",
        connection_setup_prob=0.8, connection_failure_prob=0.1,
        matching=matching, max_time=100.0, seed=10 + k,
    )
    metrics = MetricsCollector(k, entropy_every=1_000_000)
    Swarm(config, metrics=metrics).run()
    return metrics.efficiency()


def bench_workload():
    return {
        matching: [run_matching(matching, k) for k in K_VALUES]
        for matching in ("blind", "greedy")
    }


def test_ablation_matching(benchmark):
    etas = run_once(benchmark, bench_workload)
    print()
    print(format_table(
        ["k", "blind eta", "greedy eta", "friction cost"],
        [
            [k, round(etas["blind"][i], 3), round(etas["greedy"][i], 3),
             round(etas["greedy"][i] - etas["blind"][i], 3)]
            for i, k in enumerate(K_VALUES)
        ],
    ))

    # The idealised matchmaker upper-bounds the decentralised protocol.
    for i in range(len(K_VALUES)):
        assert etas["greedy"][i] >= etas["blind"][i] - 0.03

    # The friction is largest at k = 1 (one busy candidate idles the
    # whole peer) — the mechanism behind the Figure 3/4(a) jump.
    blind = etas["blind"]
    assert blind[1] > blind[0], "blind matching must improve from k=1 to 2"
