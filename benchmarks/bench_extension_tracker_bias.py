"""Extension: tracker-biased arrivals vs. the bootstrap trap (Sec. 4.3).

The paper's suggestion: "the tracker can bias new peer arrivals into
the neighborhood of the peers which are trapped in the bootstrap
phase."  This bench runs the bootstrap-prone swarm (near-complete,
highly overlapping initial population; strict-TFT donations to empty
peers only) with and without the bias and compares how long fresh
clients take to acquire tradable footing.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.sim.config import SimConfig
from repro.sim.swarm import run_swarm


def measure(bias: bool):
    config = SimConfig(
        num_pieces=60,
        max_conns=4,
        ns_size=10,
        arrival_process="poisson",
        arrival_rate=0.4,
        initial_leechers=30,
        initial_distribution="uniform",
        initial_fill=0.92,
        num_seeds=1,
        seed_upload_slots=1,
        optimistic_unchoke_prob=0.6,
        optimistic_targets="empty",
        piece_selection="random",
        tracker_bias_bootstrap=bias,
        max_time=400.0,
        seed=2,
    )
    result = run_swarm(config)
    completed = result.metrics.completed
    # Bootstrap exposure: rounds from the first piece to the fourth
    # (trading has clearly begun by then); trapped peers stretch this.
    exposures = []
    for download in completed:
        times = download.stats.piece_times
        if len(times) >= 4:
            exposures.append(times[3] - times[0])
    return {
        "bias": bias,
        "completed": len(completed),
        "mean_exposure": float(np.mean(exposures)) if exposures else float("nan"),
        "p90_exposure": float(np.percentile(exposures, 90)) if exposures else float("nan"),
    }


def bench_workload():
    return [measure(False), measure(True)]


def test_extension_tracker_bias(benchmark):
    rows = run_once(benchmark, bench_workload)
    print()
    print(format_table(
        ["tracker bias", "completed", "mean bootstrap exposure", "p90"],
        [[r["bias"], r["completed"], round(r["mean_exposure"], 1),
          round(r["p90_exposure"], 1)] for r in rows],
    ))

    unbiased, biased = rows
    assert biased["completed"] > 0 and unbiased["completed"] > 0
    # Biased arrivals reach trapped peers first, shortening the stretch
    # from the first piece to a working trading position.
    assert biased["mean_exposure"] <= unbiased["mean_exposure"] * 1.05