"""Figure 3/4(b): effect of B on successful downloads (population curve).

Paper finding: from a high-skew start under a sustained arrival stream,
the swarm population grows without bound for B = 3 but stabilises for
B = 10.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import ascii_chart, format_series
from repro.experiments.fig3bc import run_fig3bc


def bench_workload():
    return run_fig3bc(
        piece_counts=(3, 10),
        initial_leechers=250,
        arrival_rate=15.0,
        max_time=120.0,
        seed=0,
        entropy_every=4,
    )


def test_fig3b_population(benchmark):
    result = run_once(benchmark, bench_workload)
    print()
    for num_pieces in (3, 10):
        run = result.runs[num_pieces]
        print(format_series(
            f"# of peers (B={num_pieces})", run.times, run.population,
            max_rows=14, x_label="t", y_label="peers",
        ))
    print()
    print(ascii_chart(
        {f"B={b}": result.runs[b].population for b in (3, 10)},
        title="population over time (Figure 3/4(b))",
    ))

    run3, run10 = result.runs[3], result.runs[10]
    assert run3.diverged, "B=3 population must grow without bound"
    assert not run10.diverged, "B=10 population must stay bounded"

    # The B=3 curve grows roughly monotonically (smoothed halves).
    half = run3.population.size // 2
    assert run3.population[half:].mean() > run3.population[:half].mean()

    # The B=10 population stays within a few x of its starting level.
    start = 250 + 1
    assert run10.population.max() < 3 * start
