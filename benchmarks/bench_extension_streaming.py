"""Extension: streaming over the swarm (the related work [1]).

The paper summarises Arthur & Panigrahy [1]: BitTorrent "can be
effective for streaming content provided proper upload scheduling
policies are used".  This bench makes that claim concrete as a 2x2 of
piece-selection policy x reciprocity regime, measuring the minimal
stall-free startup delay of in-order playback:

* strict piece barter (the paper's TFT assumption): strictly in-order
  selection destroys mutual novelty — arriving peers never finish —
  while rarest-first both sustains the swarm and streams acceptably;
* bandwidth-style reciprocity (strict_tft off): the windowed in-order
  policy now beats rarest-first on startup delay at comparable
  throughput — the "proper upload scheduling" of [1].
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.analysis.streaming import swarm_streaming_summary
from repro.sim.config import SimConfig
from repro.sim.swarm import run_swarm

NUM_PIECES = 40
PLAYBACK_INTERVAL = 0.5


def measure(policy: str, strict: bool):
    config = SimConfig(
        num_pieces=NUM_PIECES, max_conns=2, ns_size=20,
        arrival_process="poisson", arrival_rate=1.5,
        initial_leechers=30, initial_distribution="uniform",
        initial_fill=0.5, num_seeds=1, seed_upload_slots=2,
        piece_selection=policy, strict_tft=strict,
        max_time=120.0, seed=2,
    )
    result = run_swarm(config)
    summary = swarm_streaming_summary(
        result.metrics.completed, NUM_PIECES,
        playback_interval=PLAYBACK_INTERVAL,
    )
    summary["completed"] = len(result.metrics.completed)
    summary["policy"] = policy
    summary["strict"] = strict
    return summary


def bench_workload():
    rows = []
    for strict in (True, False):
        for policy in ("rarest", "windowed", "sequential"):
            rows.append(measure(policy, strict))
    return rows


def test_extension_streaming(benchmark):
    rows = run_once(benchmark, bench_workload)
    print()
    print(format_table(
        ["reciprocity", "policy", "completed", "full downloads",
         "mean startup", "p90 startup"],
        [
            ["strict barter" if r["strict"] else "bandwidth-style",
             r["policy"], r["completed"], int(r["downloads"]),
             round(r["mean_startup_delay"], 1),
             round(r["p90_startup_delay"], 1)]
            for r in rows
        ],
    ))

    by_key = {(r["strict"], r["policy"]): r for r in rows}
    # Strict barter: in-order selection starves the swarm outright.
    assert by_key[(True, "sequential")]["downloads"] == 0
    assert by_key[(True, "rarest")]["downloads"] > 20
    # Bandwidth-style reciprocity: the windowed policy streams better.
    windowed = by_key[(False, "windowed")]
    rarest = by_key[(False, "rarest")]
    assert windowed["downloads"] > 20
    assert windowed["mean_startup_delay"] < rarest["mean_startup_delay"]
    # ...without giving up most of the throughput.
    assert windowed["completed"] > 0.6 * rarest["completed"]
